"""Structured degradation: what a partial answer is missing, and why.

When the source fails mid-relaxation the engine no longer throws away
the tuples it has already retrieved and ranked — it returns them as a
*degraded* answer and attaches a :class:`DegradationReport` describing
exactly which steps of Algorithm 1 were skipped and for which fault.
Downstream consumers (CLI, evalx reports) render the report; nothing is
silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import ProbeLimitExceededError, TransientSourceError
from repro.obs.runtime import OBS
from repro.resilience.errors import CircuitOpenError, DeadlineExceededError

__all__ = ["SkippedStep", "DegradationReport"]


@dataclass(frozen=True)
class SkippedStep:
    """One piece of Algorithm 1 that was abandoned.

    ``stage`` is where the failure hit (``base_query`` — the precise
    query mapping, ``relaxation`` — one relaxation probe,
    ``expansion`` — the remainder of a base tuple's expansion, or
    ``answer`` — the remainder of the whole call); ``error_kind`` the
    exception class that caused it.
    """

    stage: str
    reason: str
    error_kind: str
    base_row_id: int | None = None
    level: int | None = None

    def describe(self) -> str:
        where = self.stage
        if self.base_row_id is not None:
            where += f"[base row {self.base_row_id}]"
        if self.level is not None:
            where += f"@level {self.level}"
        return f"{where}: {self.reason} ({self.error_kind})"


@dataclass
class DegradationReport:
    """Everything an answer lost to source failures.

    ``budget_exhausted`` / ``breaker_open`` / ``deadline_exceeded``
    flag the terminal condition that (if any) aborted the whole call;
    ``probes_failed`` counts probes that failed past all resilience
    (each one produced a skipped step).
    """

    skipped: list[SkippedStep] = field(default_factory=list)
    budget_exhausted: bool = False
    breaker_open: bool = False
    deadline_exceeded: bool = False
    probes_failed: int = 0
    retries_used: int = 0
    breaker_opens: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.skipped)

    def record(
        self,
        stage: str,
        error: BaseException,
        base_row_id: int | None = None,
        level: int | None = None,
    ) -> SkippedStep:
        """Account one skipped step caused by ``error``."""
        if isinstance(error, ProbeLimitExceededError):
            self.budget_exhausted = True
            reason = (
                f"probe budget exhausted "
                f"({error.probes_issued}/{error.budget} probes)"
            )
        elif isinstance(error, CircuitOpenError):
            self.breaker_open = True
            reason = "circuit breaker open"
        elif isinstance(error, DeadlineExceededError):
            self.deadline_exceeded = True
            reason = f"{error.scope} deadline exceeded"
        elif isinstance(error, TransientSourceError):
            reason = "transient failures outlasted the retry allowance"
        else:
            reason = str(error) or type(error).__name__
        self.probes_failed += 1
        step = SkippedStep(
            stage=stage,
            reason=reason,
            error_kind=type(error).__name__,
            base_row_id=base_row_id,
            level=level,
        )
        self.skipped.append(step)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_resilience_skipped_steps_total",
                "Relaxation work abandoned after resilience gave up, "
                "by stage and error kind.",
                labels=("stage", "error"),
            ).labels(stage=stage, error=step.error_kind).inc()
        return step

    def summary(self) -> str:
        """One-paragraph human rendering for CLI and report appendices."""
        if not self.degraded:
            return "answer complete: no degradation"
        flags = []
        if self.budget_exhausted:
            flags.append("probe budget exhausted")
        if self.breaker_open:
            flags.append("circuit breaker open")
        if self.deadline_exceeded:
            flags.append("deadline exceeded")
        lines = [
            f"DEGRADED answer: {len(self.skipped)} step(s) skipped"
            + (f" — {', '.join(flags)}" if flags else "")
        ]
        for step in self.skipped[:8]:
            lines.append(f"  - {step.describe()}")
        if len(self.skipped) > 8:
            lines.append(f"  ... and {len(self.skipped) - 8} more")
        if self.retries_used:
            lines.append(f"  retries used: {self.retries_used}")
        if self.breaker_opens:
            lines.append(f"  breaker opened: {self.breaker_opens}x")
        return "\n".join(lines)
