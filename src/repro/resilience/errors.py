"""Errors raised by the resilience layer itself.

These are deliberately *not* :class:`~repro.db.errors.DatabaseError`
subclasses: the source did not fail — the client-side policy refused to
keep asking it.  Callers that degrade gracefully catch
:class:`ResilienceError` alongside the transient source taxonomy.
"""

from __future__ import annotations

__all__ = ["ResilienceError", "CircuitOpenError", "DeadlineExceededError"]


class ResilienceError(Exception):
    """Base class for refusals issued by the resilience policies."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open: probing is suspended.

    ``retry_in`` is the time (seconds) until the breaker will admit a
    half-open trial call; None when the breaker just opened and the
    recovery window has not been computed against the clock yet.
    """

    def __init__(self, retry_in: float | None = None) -> None:
        self.retry_in = retry_in
        message = "circuit breaker is open; probing suspended"
        if retry_in is not None:
            message += f" (trial call admitted in {retry_in:.3f}s)"
        super().__init__(message)


class DeadlineExceededError(ResilienceError):
    """A probe or query deadline budget ran out.

    ``scope`` says which budget tripped (``"probe"`` or ``"query"``),
    ``budget_seconds`` its full allocation and ``elapsed_seconds`` how
    much had been consumed when the refusal was issued.
    """

    def __init__(
        self,
        scope: str,
        budget_seconds: float,
        elapsed_seconds: float,
    ) -> None:
        self.scope = scope
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds
        super().__init__(
            f"{scope} deadline of {budget_seconds:.3f}s exceeded "
            f"({elapsed_seconds:.3f}s elapsed)"
        )
