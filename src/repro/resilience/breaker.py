"""Circuit breaker: stop probing a source that keeps failing.

Retries cure blips; they make sustained outages *worse* — every query
would burn its full retry allowance against a dead source.  The breaker
sits above the retrier and counts *guarded-call outcomes* (a call that
succeeded after two retries is a success):

* ``closed`` — traffic flows; ``failure_threshold`` consecutive
  failures open the circuit;
* ``open`` — calls are refused instantly with
  :class:`~repro.resilience.errors.CircuitOpenError` until
  ``recovery_seconds`` have passed on the injected clock;
* ``half_open`` — one trial call is admitted: success closes the
  circuit, failure re-opens it for a fresh recovery window.

Transitions are recorded in ``transitions`` (for tests and reports)
and, when observability is on, in
``repro_resilience_breaker_transitions_total{from_state,to_state}``.
"""

from __future__ import annotations

from enum import Enum

from repro.obs.runtime import OBS
from repro.resilience.clock import Clock
from repro.resilience.errors import CircuitOpenError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker over an injectable clock."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 1.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds cannot be negative")
        if clock is None:
            raise ValueError("a clock must be injected")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.rejections = 0
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> BreakerState:
        """Current state (open circuits lapse to half-open lazily)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock.monotonic() - self._opened_at
            >= self.recovery_seconds
        ):
            self._transition(BreakerState.HALF_OPEN)
        return self._state

    @property
    def open_count(self) -> int:
        """How many times the circuit has opened so far."""
        return sum(1 for _, to in self.transitions if to == "open")

    def before_call(self) -> None:
        """Gate one guarded call; raises when the circuit is open."""
        if self.state is BreakerState.OPEN:
            self.rejections += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_resilience_breaker_rejections_total",
                    "Guarded calls refused because the circuit was open.",
                ).inc()
            retry_in = max(
                0.0,
                self.recovery_seconds
                - (self._clock.monotonic() - self._opened_at),
            )
            raise CircuitOpenError(retry_in=retry_in)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            # The trial call failed: back to a fresh recovery window.
            self._open()
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open()

    # -- internals -----------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self._clock.monotonic()
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, to: BreakerState) -> None:
        origin = self._state
        self._state = to
        self.transitions.append((origin.value, to.value))
        if OBS.enabled:
            OBS.registry.counter(
                "repro_resilience_breaker_transitions_total",
                "Circuit-breaker state transitions.",
                labels=("from_state", "to_state"),
            ).labels(from_state=origin.value, to_state=to.value).inc()
