"""Resilience wiring for the sharded scatter-gather facade.

:class:`~repro.db.sharded.ShardedWebDatabase` knows nothing about this
package (layering, enforced by REP003); it only exposes two injection
points — per-shard admission guards and a failure listener.
:class:`ShardResilience` plugs the PR 4 resilience stack into both:

* one :class:`CircuitBreaker` per shard (sized by the policy's breaker
  knobs, measured against one injected clock), adapted to the facade's
  ``ShardGuard`` protocol, so a shard that keeps failing is ejected
  from scatters until its recovery window lapses;
* every shard dropout lands in a :class:`DegradationReport` under the
  stage ``shard<N>:<query|count>`` — open breakers set
  ``breaker_open``, transient taxonomy errors read as probes that
  failed past all resilience — which is exactly the partial-results
  contract the answering engine already renders for unsharded sources.
"""

from __future__ import annotations

from repro.db.sharded import ShardedWebDatabase, ShardFailure
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.degradation import DegradationReport
from repro.resilience.policy import ResiliencePolicy

__all__ = ["BreakerShardGuard", "ShardResilience"]


class BreakerShardGuard:
    """Adapts a :class:`CircuitBreaker` to the facade's guard protocol.

    The protocol passes the triggering error to ``record_failure``; the
    consecutive-failure breaker does not need it, so the adapter drops
    it.
    """

    def __init__(self, breaker: CircuitBreaker) -> None:
        self.breaker = breaker

    def before_call(self) -> None:
        self.breaker.before_call()

    def record_success(self) -> None:
        self.breaker.record_success()

    def record_failure(self, error: BaseException) -> None:
        self.breaker.record_failure()


class ShardResilience:
    """Per-shard breakers plus degradation accounting for one facade.

    Construction attaches the guards and the failure listener; the
    facade must be in ``partial_results`` mode for degraded scatters to
    return (otherwise the first failure still propagates, which is the
    intended strict behaviour — the report then records the fatal
    step).
    """

    def __init__(
        self,
        sharded: ShardedWebDatabase,
        policy: ResiliencePolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.sharded = sharded
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.report = DegradationReport()
        self.breakers: tuple[CircuitBreaker, ...] = ()
        if self.policy.breaker_failure_threshold is not None:
            self.breakers = tuple(
                CircuitBreaker(
                    failure_threshold=self.policy.breaker_failure_threshold,
                    recovery_seconds=self.policy.breaker_recovery_seconds,
                    clock=self.clock,
                )
                for _ in range(sharded.n_shards)
            )
            sharded.attach_guards(
                [BreakerShardGuard(breaker) for breaker in self.breakers]
            )
        sharded.set_failure_listener(self._on_failure)

    def _on_failure(self, failure: ShardFailure) -> None:
        self.report.record(
            stage=f"shard{failure.shard}:{failure.stage}", error=failure.error
        )

    def fresh_report(self) -> DegradationReport:
        """Start a new report (e.g. per answering call); returns the new one."""
        self.report = DegradationReport()
        return self.report

    def breaker_opens(self) -> int:
        """Total times any shard's breaker opened so far."""
        return sum(breaker.open_count for breaker in self.breakers)
