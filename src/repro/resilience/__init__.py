"""Client-side resilience for probing autonomous Web sources.

The paper's model assumes sources that always answer; real Web forms
time out, throttle and go down.  This package supplies the client-side
machinery that keeps AIMQ useful against such sources — retry with
deterministic backoff, circuit breaking, deadline budgets, and
structured degradation — all measured against an injectable clock so
every schedule is reproducible under a seed.

Layering: this package sits beside ``repro.db`` (it knows the transient
error taxonomy and wraps the facade) and below everything that probes.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.budget import DeadlineBudget
from repro.resilience.clock import Clock, SystemClock, VirtualClock
from repro.resilience.degradation import DegradationReport, SkippedStep
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import Retrier, RetryConfig
from repro.resilience.sharding import BreakerShardGuard, ShardResilience
from repro.resilience.source import ResilientWebDatabase

__all__ = [
    "BreakerShardGuard",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "Clock",
    "DeadlineBudget",
    "DeadlineExceededError",
    "DegradationReport",
    "ResilienceError",
    "ResiliencePolicy",
    "ResilientWebDatabase",
    "Retrier",
    "RetryConfig",
    "ShardResilience",
    "SkippedStep",
    "SystemClock",
    "VirtualClock",
]
