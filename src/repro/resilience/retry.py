"""Retry with exponential backoff and deterministic, seeded jitter.

The retrier only ever swallows the transient taxonomy
(:class:`~repro.db.errors.TransientSourceError`); permanent failures —
schema errors, malformed queries, an exhausted probe budget — propagate
on the first attempt, because retrying them hides real bugs (this is
precisely the shape reprolint's REP006 retry extension enforces
repo-wide).

Determinism: the jitter comes from a private ``random.Random(seed)``
stream, one draw per backoff sleep, and all waiting goes through the
injectable clock — so a retry schedule is a pure function of
``(config, seed, error sequence)`` and the chaos suite can assert it
exactly, with no wall-clock involved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.db.errors import TransientSourceError
from repro.obs.runtime import OBS
from repro.resilience.budget import DeadlineBudget
from repro.resilience.clock import Clock

__all__ = ["RetryConfig", "Retrier"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryConfig:
    """Backoff shape for one retrier.

    Attempt ``n`` (1-based) that fails transiently sleeps

    ``min(max_delay, base_delay * multiplier**(n-1)) * (1 - jitter*u)``

    with ``u`` drawn from the seeded stream, then retries; a
    ``retry_after`` hint on the error raises the sleep to at least that
    value (a throttling source's word beats the local schedule).  After
    ``max_attempts`` total attempts the last transient error is
    re-raised unchanged.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


class Retrier:
    """Executes callables under a :class:`RetryConfig`.

    One retrier holds one jitter stream; share a single instance per
    source so the schedule stays a function of the global attempt
    sequence.
    """

    def __init__(self, config: RetryConfig, clock: Clock) -> None:
        self.config = config
        self._clock = clock
        self._rng = random.Random(config.seed)
        self.retries = 0
        self.exhaustions = 0

    def backoff_delay(
        self, attempt: int, retry_after: float | None = None
    ) -> float:
        """The (jittered) sleep after failed attempt ``attempt``.

        Advances the jitter stream by exactly one draw.
        """
        config = self.config
        raw = min(
            config.max_delay,
            config.base_delay * config.multiplier ** (attempt - 1),
        )
        jittered = raw * (1.0 - config.jitter * self._rng.random())
        if retry_after is not None:
            jittered = max(jittered, retry_after)
        return jittered

    def call(
        self,
        fn: Callable[[], T],
        budgets: tuple[DeadlineBudget, ...] = (),
    ) -> T:
        """Run ``fn``, retrying transient failures within the budgets.

        Every attempt first checks each budget; a budget that cannot
        afford the next backoff sleep — because the delay would consume
        its entire remaining time, or nothing remains at all — turns
        the transient failure into a
        :class:`~repro.resilience.errors.DeadlineExceededError` chained
        from it, *before* any time is slept.  Backoff therefore never
        sleeps up to (or past) an active deadline.
        """
        config = self.config
        attempt = 0
        while True:
            attempt += 1
            for budget in budgets:
                budget.require()
            try:
                value = fn()
            except TransientSourceError as exc:
                self._record_attempt("transient")
                if attempt >= config.max_attempts:
                    self.exhaustions += 1
                    if OBS.enabled:
                        OBS.registry.counter(
                            "repro_resilience_retry_exhaustions_total",
                            "Guarded calls whose transient failures "
                            "outlasted the retry allowance.",
                        ).inc()
                    raise
                delay = self.backoff_delay(attempt, exc.retry_after)
                for budget in budgets:
                    if not budget.affords_sleep(delay):
                        if OBS.enabled:
                            OBS.registry.counter(
                                "repro_resilience_deadline_refusals_total",
                                "Backoff sleeps refused by a deadline "
                                "budget, by scope.",
                                labels=("scope",),
                            ).labels(scope=budget.scope).inc()
                        raise budget.refuse_sleep(delay) from exc
                self.retries += 1
                if OBS.events.enabled and OBS.events.probe_events:
                    OBS.emit_event(
                        "resilience.retry",
                        attempt=attempt,
                        max_attempts=config.max_attempts,
                        delay_seconds=round(delay, 6),
                        error=type(exc).__name__,
                        trace_id=OBS.current_trace_id() or "",
                    )
                if OBS.enabled:
                    OBS.registry.counter(
                        "repro_resilience_retries_total",
                        "Retry sleeps performed, by transient error kind.",
                        labels=("error",),
                    ).labels(error=type(exc).__name__).inc()
                    OBS.registry.histogram(
                        "repro_resilience_backoff_seconds",
                        "Backoff sleep durations before retrying a probe.",
                        buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0),
                    ).observe(delay)
                    with OBS.span(
                        "resilience.backoff",
                        attempt=attempt,
                        max_attempts=config.max_attempts,
                        delay=round(delay, 6),
                        error=type(exc).__name__,
                    ):
                        self._clock.sleep(delay)
                else:
                    self._clock.sleep(delay)
            else:
                self._record_attempt("ok")
                return value

    @staticmethod
    def _record_attempt(outcome: str) -> None:
        if OBS.enabled:
            OBS.registry.counter(
                "repro_resilience_attempts_total",
                "Guarded probe attempts, by outcome.",
                labels=("outcome",),
            ).labels(outcome=outcome).inc()
