"""Domain independence: AIMQ over the Census database (paper §6.5).

The same code path that answered used-car queries answers the paper's
Q':- CensusDB(Education like Bachelors, Hours-per-week like 40) with no
domain-specific configuration — only the mined models change.  The
script also reproduces a miniature of Figure 9's evaluation: the top
answers for a person-tuple should share that person's income class more
often than the base rate.

Run:  python examples/census_neighbors.py
"""

import random

from repro import ImpreciseQuery, build_model_from_sample
from repro.datasets import generate_censusdb
from repro.db.webdb import AutonomousWebDatabase
from repro.evalx import census_settings
from repro.sampling.collector import nested_samples


def main() -> None:
    table, labels = generate_censusdb(6_000, seed=11)
    webdb = AutonomousWebDatabase(table)

    sample = nested_samples(table, [2_000], random.Random(3))[2_000]
    model = build_model_from_sample(
        sample, settings=census_settings(error_threshold=0.3)
    )
    print(model.ordering.describe())

    engine = model.engine(webdb)

    # The paper's Q' — likeness over one categorical and one numeric.
    query = ImpreciseQuery.like(
        "CensusDB", **{"Education": "Bachelors", "Hours-per-week": 40}
    )
    print(f"\n{query.describe()}")
    answers = engine.answer(query, k=8)
    for rank, answer in enumerate(answers, start=1):
        person = answer.as_mapping(webdb.schema)
        print(
            f"  {rank}. sim={answer.similarity:.3f} "
            f"{person['Education']:<13} {person['Occupation']:<18} "
            f"{person['Hours-per-week']:>3}h/wk age {person['Age']}"
        )

    # Mini Figure 9: same-class rate of nearest neighbours.
    rng = random.Random(5)
    query_ids = rng.sample(range(len(table)), 30)
    hits = total = 0
    for query_id in query_ids:
        found, _ = engine.gather_similar(
            table.row(query_id),
            similarity_threshold=0.4,
            target=5,
            row_id=query_id,
        )
        for answer in found[:5]:
            total += 1
            hits += labels[answer.row_id] == labels[query_id]
    base_rate = max(labels.count(">50K"), labels.count("<=50K")) / len(labels)
    print(
        f"\ntop-5 neighbour class agreement: {hits}/{total} "
        f"({hits / max(total, 1):.2f}) vs majority base rate {base_rate:.2f}"
    )


if __name__ == "__main__":
    main()
