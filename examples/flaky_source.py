"""The same imprecise query against a healthy, a flaky and a guarded source.

Three runs of ``Model like Camry AND Price like 9000`` over CarDB:

1. a healthy source — the baseline answers;
2. a flaky source (20% transient faults, a throttling burst, one
   outage window) with **no** protection — the engine degrades
   gracefully, returning whatever it ranked before each failure;
3. the same flaky source behind the full resilience stack — retries
   with seeded backoff, deadline budgets and a circuit breaker cure
   the transient schedule and recover the baseline answers exactly.

Everything is seeded, so the output of this script is deterministic.

Run:  python examples/flaky_source.py
"""

from repro import ImpreciseQuery, build_model
from repro.datasets import cardb_webdb
from repro.datasets.cardb import generate_cardb
from repro.db import AutonomousWebDatabase, FaultPolicy, FaultSpec
from repro.resilience import ResiliencePolicy, RetryConfig

ROWS = 2_000
QUERY = ImpreciseQuery.like("CarDB", Model="Camry", Price=9_000)

FLAKY = FaultSpec(
    transient_rate=0.2,   # generic blips
    timeout_rate=0.05,    # slow pages that give up
    throttle_rate=0.05,   # "come back in 50 ms"
    outages=((40, 55),),  # attempts 40-54: source is down
)


def flaky_webdb(table, seed=42):
    return AutonomousWebDatabase(
        table, fault_policy=FaultPolicy(FLAKY, seed=seed)
    )


def describe(title, answers, webdb):
    print(f"\n=== {title} ===")
    print(answers.describe(webdb.schema, top=5))
    print(f"probes issued: {webdb.log.probes_issued}")
    policy = getattr(webdb, "fault_policy", None)
    if policy is not None:
        fired = {k: v for k, v in policy.injected.items() if v}
        print(f"faults injected: {fired or 'none'}")
    print(answers.degradation.summary())


def main():
    webdb = cardb_webdb(ROWS)
    model = build_model(webdb, sample_size=600)
    table = generate_cardb(ROWS)

    # 1. The baseline: a source that always answers.
    healthy = AutonomousWebDatabase(table)
    baseline = model.engine(healthy).answer(QUERY, k=5)
    describe("healthy source", baseline, healthy)

    # 2. The same query against a flaky source, no protection: failed
    # relaxation steps are skipped and recorded, ranked work survives.
    unguarded = flaky_webdb(table)
    degraded = model.engine(unguarded).answer(QUERY, k=5)
    describe("flaky source, no protection", degraded, unguarded)

    # 3. The flaky source behind the resilience stack: transient
    # faults are retried away and the baseline answers come back.
    guarded = flaky_webdb(table)
    engine = model.engine(
        guarded,
        resilience=ResiliencePolicy(
            # Enough attempts to outlast the 15-attempt outage window,
            # with backoff capped low so the demo stays snappy.
            retry=RetryConfig(
                max_attempts=20, base_delay=0.005, max_delay=0.05, seed=7
            ),
            breaker_failure_threshold=None,
            probe_deadline_seconds=5.0,
            query_deadline_seconds=60.0,
        ),
    )
    healed = engine.answer(QUERY, k=5)
    describe("flaky source + resilience", healed, guarded)
    print(f"\nresilience work: {engine.webdb.stats()}")

    same = healed.row_ids == baseline.row_ids
    print(f"recovered the baseline answers exactly: {'YES' if same else 'NO'}")


if __name__ == "__main__":
    main()
