"""Robustness over sampling: a compact rerun of §6.2 (Figs 3-4, Table 3).

AIMQ learns from a *probed sample* of an autonomous source, so the
paper devotes a section to showing the learned artifacts are stable
under sampling: absolute supports and similarities shift, relative
orderings do not.  This script reruns those three experiments at a
laptop-friendly scale and prints the paper-style summaries.

Run:  python examples/robustness_study.py
"""

from repro.evalx import (
    format_fig3,
    format_fig4,
    format_table3,
    run_fig3,
    run_fig4,
    run_table3,
)

CAR_ROWS = 8000
FRACTIONS = (0.15, 0.25, 0.5, 1.0)


def main() -> None:
    fig3 = run_fig3(car_rows=CAR_ROWS, fractions=FRACTIONS)
    print(format_fig3(fig3))

    print()
    fig4 = run_fig4(car_rows=CAR_ROWS, fractions=FRACTIONS)
    print(format_fig4(fig4))

    print()
    table3 = run_table3(car_rows=CAR_ROWS, small_fraction=0.25)
    print(format_table3(table3))

    print()
    verdicts = [
        ("attribute ordering stable", fig3.orderings_consistent()),
        ("best approximate key stable", fig4.best_key_stable()),
    ]
    for claim, held in verdicts:
        print(f"  {claim}: {'YES' if held else 'NO'}")


if __name__ == "__main__":
    main()
