"""Closing the loop: relevance feedback tuning (paper §7 future work).

The paper's conclusion proposes using relevance feedback "to tune the
importance weights assigned to an attribute" and "to tune the distance
between values binding an attribute".  This script simulates that loop:

1. AIMQ answers imprecise queries with its data-driven models;
2. a (simulated) price-sensitive user judges the answers;
3. the tuners update the importance weights and value similarities;
4. the retuned engine answers again — better aligned with the user.

It also shows the query-driven companion: importance estimated from a
recorded query workload, blended with the mined weights.

Run:  python examples/relevance_feedback.py
"""

import random

from repro import ImpreciseQuery, build_model
from repro.core.engine import AIMQEngine
from repro.datasets import cardb_webdb
from repro.evalx.userstudy import CarGroundTruth
from repro.feedback import (
    FeedbackLog,
    ImportanceTuner,
    QueryWorkload,
    ValueSimilarityTuner,
    blend_importance,
)


def judge(ground_truth, schema, query, answers, threshold=0.9):
    """A simulated user accepts answers close to their hidden taste."""
    reference = {
        c.attribute: c.value for c in query.like_constraints
    }
    return [
        (answer.row, ground_truth.score(reference, answer.row) >= threshold)
        for answer in answers
    ]


def average_taste(ground_truth, query, answers):
    reference = {c.attribute: c.value for c in query.like_constraints}
    if not answers:
        return 0.0
    return sum(
        ground_truth.score(reference, a.row) for a in answers
    ) / len(answers)


def main() -> None:
    webdb = cardb_webdb(8_000, seed=9)
    model = build_model(webdb, sample_size=2_000, rng=random.Random(2))
    schema = webdb.schema
    ground_truth = CarGroundTruth(schema)

    # Rare models force the engine past exact matches, so the answer
    # lists mix strong and weak candidates — real feedback signal.
    queries = [
        ImpreciseQuery.like("CarDB", Model="M3", Price=30_000),
        ImpreciseQuery.like("CarDB", Model="Quest", Price=12_000),
        ImpreciseQuery.like("CarDB", Model="Amigo", Price=9_000),
        ImpreciseQuery.like("CarDB", Model="Prelude", Price=11_000),
    ]

    # Round 1: answer permissively and collect judgements.
    engine = model.engine(webdb)
    log = FeedbackLog(schema)
    before = []
    for query in queries:
        answers = engine.answer(query, k=10, similarity_threshold=0.3)
        before.append(average_taste(ground_truth, query, answers.answers))
        log.record_many(query, judge(ground_truth, schema, query, answers))
    print(
        f"round 1: {len(log)} judgements, precision {log.precision():.2f}, "
        f"avg taste score {sum(before) / len(before):.3f}"
    )

    # Tune both mined artifacts from the feedback.
    tuned_ordering = ImportanceTuner(schema, learning_rate=0.15).tune(
        model.ordering, log, value_similarity=model.value_similarity
    )
    tuned_similarity = ValueSimilarityTuner(schema, learning_rate=0.15).tune(
        model.value_similarity, log
    )
    print("\ntuned importance (was -> now):")
    for name in schema.attribute_names:
        print(
            f"  {name:<10} {model.ordering.importance[name]:.3f} -> "
            f"{tuned_ordering.importance[name]:.3f}"
        )

    # Round 2 with the tuned engine.
    tuned_engine = AIMQEngine(
        webdb=webdb,
        ordering=tuned_ordering,
        value_similarity=tuned_similarity,
        settings=model.settings,
    )
    after = [
        average_taste(
            ground_truth, query, tuned_engine.answer(query, k=10).answers
        )
        for query in queries
    ]
    print(
        f"\nround 2 avg taste score {sum(after) / len(after):.3f} "
        f"(was {sum(before) / len(before):.3f})"
    )

    # Query-driven companion: importance from the recorded workload.
    workload = QueryWorkload(schema)
    workload.record_many(queries)
    blended = blend_importance(model.ordering, workload, alpha=0.5)
    print("\nworkload-blended importance (α=0.5):")
    for name in sorted(
        schema.attribute_names, key=lambda n: -blended.importance[n]
    )[:4]:
        print(f"  {name:<10} {blended.importance[name]:.3f}")


if __name__ == "__main__":
    main()
