"""A richer used-car search session over the CarDB source.

Demonstrates the pieces a downstream application would actually touch:

* mixed precise + imprecise constraints (``Price < 12000`` AND
  ``Model like Accord``),
* query-by-example ("more cars like this listing"),
* inspecting the mined artifacts — similar makes/models, the Figure 5
  similarity graph, the attribute relaxation order,
* the RandomRelax strawman for comparison.

Run:  python examples/used_car_search.py
"""

from repro import AIMQSettings, ImpreciseQuery, build_model
from repro.core.query import LikeConstraint, PreciseConstraint
from repro.datasets import cardb_webdb
from repro.db.predicates import Lt
from repro.simmining.graph import neighbors_above, similarity_graph


def show_similar_values(model) -> None:
    print("Mined value similarities (no user input, no domain knowledge):")
    for attribute, value in (("Make", "Ford"), ("Model", "Camry"), ("Year", "1998")):
        ranked = model.value_similarity.top_similar(attribute, value, n=4)
        rendered = ", ".join(f"{v} ({s:.2f})" for v, s in ranked)
        print(f"  {attribute}={value:<8} ~ {rendered}")


def show_similarity_graph(model) -> None:
    graph = similarity_graph(model.value_similarity, "Make", threshold=0.2)
    print("\nFigure-5-style neighbourhood of Make=Ford (threshold 0.2):")
    for name, weight in neighbors_above(graph, "Ford"):
        print(f"  Ford -- {name:<12} {weight:.3f}")


def mixed_query(engine, webdb) -> None:
    query = ImpreciseQuery(
        "CarDB",
        (
            LikeConstraint("Model", "Accord"),
            PreciseConstraint(Lt("Price", 12_000)),
        ),
    )
    print(f"\nMixed query: {query.describe()}")
    answers = engine.answer(query, k=8)
    print(answers.describe(webdb.schema, top=8))


def query_by_example(engine, webdb) -> None:
    example = {
        "Make": "Subaru",
        "Model": "Outback",
        "Year": "2001",
        "Price": 13_000,
    }
    print(f"\nMore like this: {example}")
    answers = engine.answer_by_example(example, k=6)
    print(answers.describe(webdb.schema, top=6))


def compare_with_random(model, webdb) -> None:
    """At a strict threshold GuidedRelax wastes far less extraction."""
    seeds = webdb.query(
        ImpreciseQuery.like("CarDB", Model="Civic").to_base_query()
    ).rows[:6]
    print(
        "\nWork comparison over 6 tuple queries "
        "(T_sim=0.9, target 10 similar tuples each):"
    )
    for name, engines in (
        ("GuidedRelax", [model.engine(webdb) for _ in seeds]),
        ("RandomRelax", [model.random_engine(webdb, seed=i) for i in range(len(seeds))]),
    ):
        extracted = relevant = 0
        for engine, row in zip(engines, seeds):
            _, trace = engine.gather_similar(
                row, similarity_threshold=0.9, target=10
            )
            extracted += trace.tuples_extracted
            relevant += trace.tuples_relevant
        work = extracted / max(relevant, 1)
        print(
            f"  {name}: {extracted} extracted / {relevant} relevant "
            f"(work {work:.1f})"
        )


def main() -> None:
    webdb = cardb_webdb(10_000, seed=11)
    settings = AIMQSettings(max_relaxation_level=4)
    model = build_model(webdb, sample_size=2_500, settings=settings)

    show_similar_values(model)
    show_similarity_graph(model)

    engine = model.engine(webdb)
    mixed_query(engine, webdb)
    query_by_example(engine, webdb)
    compare_with_random(model, webdb)


if __name__ == "__main__":
    main()
