"""Quickstart: answer the paper's motivating query with AIMQ.

The §1 example: a user searching a used-car database wants "Camrys
around $10000" — and would also be happy with a Camry at $10,500 or a
similar sedan.  AIMQ needs no user-supplied similarity metrics: it
probes the source, mines attribute dependencies and value similarities,
and answers the imprecise query with a ranked list.

Run:  python examples/quickstart.py
"""

from repro import AIMQSettings, ImpreciseQuery, build_model
from repro.datasets import cardb_webdb


def main() -> None:
    # 1. An autonomous Web source: form-style access only.
    webdb = cardb_webdb(10_000, seed=7)
    print(f"Source: {webdb.name} advertising {webdb.cardinality_hint()} listings")

    # 2. Offline: probe a sample, mine AFDs/keys and value similarities.
    model = build_model(
        webdb, sample_size=2_500, settings=AIMQSettings(max_relaxation_level=3)
    )
    print()
    print(model.ordering.describe())

    # 3. Online: the imprecise query from the paper's introduction.
    engine = model.engine(webdb)
    query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10_000)
    answers = engine.answer(query, k=10)

    print()
    print(answers.describe(webdb.schema))
    trace = answers.trace
    print(
        f"\nwork: {trace.queries_issued} relaxation probes, "
        f"{trace.tuples_extracted} tuples extracted, "
        f"{trace.tuples_relevant} relevant"
    )


if __name__ == "__main__":
    main()
