"""Unit tests for keyword bags and Jaccard semantics."""

import pytest

from repro.simmining.bag import Bag, jaccard_bags, jaccard_sets


class TestBagBasics:
    def test_counts_and_len(self):
        bag = Bag(["a", "b", "a"])
        assert len(bag) == 3
        assert bag.count("a") == 2 and bag.count("z") == 0
        assert bag.support == 2

    def test_from_counts(self):
        bag = Bag.from_counts({"a": 2, "b": 1, "z": 0})
        assert bag.count("a") == 2
        assert "z" not in bag

    def test_from_counts_negative_rejected(self):
        with pytest.raises(ValueError):
            Bag.from_counts({"a": -1})

    def test_membership_iteration(self):
        bag = Bag(["x", "y", "x"])
        assert "x" in bag and "z" not in bag
        assert set(bag) == {"x", "y"}

    def test_equality(self):
        assert Bag(["a", "a", "b"]) == Bag.from_counts({"a": 2, "b": 1})
        assert Bag(["a"]) != Bag(["b"])

    def test_most_common(self):
        bag = Bag(["a", "a", "b"])
        assert bag.most_common(1) == [("a", 2)]

    def test_as_set(self):
        assert Bag(["a", "a", "b"]).as_set() == frozenset({"a", "b"})

    def test_counts_copy_is_detached(self):
        bag = Bag(["a"])
        counts = bag.counts()
        counts["a"] = 99
        assert bag.count("a") == 1


class TestBagJaccard:
    def test_identical_bags(self):
        bag = Bag(["a", "a", "b"])
        assert bag.jaccard(bag) == 1.0

    def test_disjoint_bags(self):
        assert Bag(["a"]).jaccard(Bag(["b"])) == 0.0

    def test_empty_bags_are_identical(self):
        assert Bag().jaccard(Bag()) == 1.0

    def test_empty_vs_nonempty(self):
        assert Bag().jaccard(Bag(["a"])) == 0.0

    def test_multiplicity_matters(self):
        # {a:2} vs {a:1}: min 1, max 2 -> 0.5 under bag semantics.
        assert Bag(["a", "a"]).jaccard(Bag(["a"])) == pytest.approx(0.5)
        # Set semantics would say 1.0.
        assert jaccard_sets(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_known_value(self):
        a = Bag(["x", "x", "y"])
        b = Bag(["x", "y", "y", "z"])
        # min: x1+y1=2; max: x2+y2+z1=5
        assert a.jaccard(b) == pytest.approx(2 / 5)

    def test_symmetry(self):
        a = Bag(["x", "x", "y"])
        b = Bag(["y", "z"])
        assert a.jaccard(b) == pytest.approx(b.jaccard(a))

    def test_intersection_union_sizes(self):
        a = Bag(["x", "x", "y"])
        b = Bag(["x", "z"])
        assert a.intersection_size(b) == 1
        assert a.union_size(b) == 4

    def test_module_alias(self):
        a, b = Bag(["x"]), Bag(["x"])
        assert jaccard_bags(a, b) == a.jaccard(b)


class TestSetJaccard:
    def test_basic(self):
        assert jaccard_sets(frozenset("ab"), frozenset("bc")) == pytest.approx(1 / 3)

    def test_empty(self):
        assert jaccard_sets(frozenset(), frozenset()) == 1.0
        assert jaccard_sets(frozenset("a"), frozenset()) == 0.0
