"""Inverted-index retrieval: unit and bit-identity properties.

The index layer's contract is exactness, not approximation:

* candidate generation emits the subsequence of the naive pair grid
  whose pairs share at least one feature, in grid order, and every
  omitted pair has VSim exactly 0 (the empty-bag sentinel keeps
  empty-vs-empty pairs, whose SimJ is 1, in the candidate set);
* mining with ``use_index=True`` produces the bit-identical
  :class:`SimilarityModel` as the naive grid, composed with any
  ``workers``/``prune_bound`` setting;
* ``top_similar`` served from :class:`TopSimilarIndex` reproduces the
  linear scan's ranking including tie order;
* incremental add/remove converges to the same index a fresh rebuild
  over the surviving supertuples produces.
"""

from __future__ import annotations

import random
from types import MappingProxyType

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.simmining.avpair import AVPair
from repro.simmining.bag import Bag
from repro.simmining.estimator import (
    SimilarityMinerConfig,
    SimilarityModel,
    ValueSimilarityMiner,
    _evaluate_pairs,
    _pair_grid,
)
from repro.simmining.index import (
    EMPTY_BAG,
    SuperTupleIndex,
    TopSimilarIndex,
)
from repro.simmining.supertuple import SuperTuple

# -- helpers ----------------------------------------------------------------

WEIGHTS = (("X", 0.6), ("Y", 0.4))


def _supertuple(value: str, x: dict, y: dict) -> SuperTuple:
    """A two-bag supertuple for the ``WEIGHTS`` attribute set."""
    bags = {"X": Bag.from_counts(x), "Y": Bag.from_counts(y)}
    return SuperTuple(AVPair("A", value), bags, answerset_size=1)


def _random_table(
    rng: random.Random, n_attributes: int, n_values: int, n_rows: int
) -> Table:
    """All-categorical table with Zipf-skewed value frequencies."""
    names = tuple(f"A{index}" for index in range(n_attributes))
    schema = RelationSchema.build(
        "prop", categorical=names, numeric=(), order=names
    )
    domains = [
        [f"{name}_{value}" for value in range(n_values)] for name in names
    ]
    weights = [1.0 / (rank + 1) for rank in range(n_values)]
    table = Table(schema)
    for _ in range(n_rows):
        table.insert(
            tuple(
                rng.choices(domain, weights=weights, k=1)[0]
                for domain in domains
            )
        )
    return table


def _model_state(model: SimilarityModel):
    return (
        {name: model.pairs(name) for name in model.attributes},
        {name: model.known_values(name) for name in model.attributes},
    )


# -- SuperTupleIndex units --------------------------------------------------


class TestSuperTupleIndex:
    def test_add_contains_len(self):
        index = SuperTupleIndex(WEIGHTS)
        index.add(_supertuple("a", {"k": 2}, {"m": 1}))
        assert "a" in index and "b" not in index
        assert len(index) == 1
        assert index.posting_count == 2
        assert index.feature_count == 2

    def test_candidates_require_a_shared_feature(self):
        index = SuperTupleIndex(WEIGHTS)
        index.add(_supertuple("a", {"k": 2}, {"m": 1}))
        index.add(_supertuple("b", {"k": 1}, {"n": 3}))
        index.add(_supertuple("c", {"q": 1}, {"r": 1}))
        assert index.candidate_pairs(["a", "b", "c"]) == [(0, 1)]

    def test_candidates_in_grid_order(self):
        index = SuperTupleIndex(WEIGHTS)
        for value in ("a", "b", "c", "d"):
            index.add(_supertuple(value, {"k": 1}, {}))
        assert index.candidate_pairs(["a", "b", "c", "d"]) == _pair_grid(4)

    def test_empty_vs_empty_stays_candidate(self):
        # SimJ(∅, ∅) = 1, so two all-empty supertuples must share the
        # sentinel feature and survive candidate generation.
        index = SuperTupleIndex(WEIGHTS)
        index.add(_supertuple("a", {}, {}))
        index.add(_supertuple("b", {}, {}))
        index.add(_supertuple("c", {"k": 1}, {"m": 1}))
        assert index.candidate_pairs(["a", "b", "c"]) == [(0, 1)]
        assert ("X", EMPTY_BAG) in dict(index.snapshot())

    def test_magnitudes_follow_semantics(self):
        bag_index = SuperTupleIndex(WEIGHTS, bag_semantics=True)
        set_index = SuperTupleIndex(WEIGHTS, bag_semantics=False)
        st_a = _supertuple("a", {"k": 3, "l": 1}, {})
        bag_index.add(st_a)
        set_index.add(st_a)
        assert bag_index.magnitudes("a") == (4, 0)
        assert set_index.magnitudes("a") == (2, 0)

    def test_add_replaces_stale_entry(self):
        index = SuperTupleIndex(WEIGHTS)
        index.add(_supertuple("a", {"k": 2}, {}))
        index.add(_supertuple("a", {"m": 1}, {}))
        assert len(index) == 1
        snapshot = index.snapshot()
        assert ("X", "m") in snapshot and ("X", "k") not in snapshot

    def test_remove_drops_postings(self):
        index = SuperTupleIndex(WEIGHTS)
        index.add(_supertuple("a", {"k": 2}, {"m": 1}))
        index.add(_supertuple("b", {"k": 1}, {}))
        index.remove("a")
        assert "a" not in index
        assert index.snapshot() == {
            ("X", "k"): (("b", 1),),
            ("Y", EMPTY_BAG): (("b", 0),),
        }
        index.remove("never-added")  # no-op, not an error

    def test_zero_weight_attributes_are_not_indexed(self):
        index = SuperTupleIndex((("X", 1.0),))
        index.add(_supertuple("a", {}, {"m": 5}))
        index.add(_supertuple("b", {}, {"m": 5}))
        # Only X is weighted; both bags are empty there, so the pair
        # survives via the sentinel, and Y's keywords index nothing.
        assert index.candidate_pairs(["a", "b"]) == [(0, 1)]
        assert index.feature_count == 1


# -- TopSimilarIndex units --------------------------------------------------


class TestTopSimilarIndex:
    def test_top_ranks_by_score_then_value(self):
        index = TopSimilarIndex()
        index.record("ford", "chevy", 0.25)
        index.record("ford", "toyota", 0.25)  # tie: value breaks it
        index.record("ford", "dodge", 0.5)
        assert index.top("ford", 3) == [
            ("dodge", 0.5),
            ("chevy", 0.25),
            ("toyota", 0.25),
        ]

    def test_top_fills_with_zero_similarity_known_values(self):
        index = TopSimilarIndex()
        index.record("a", "b", 0.5)
        index.register("c")
        index.register("d")
        assert index.top("a", 10) == [("b", 0.5), ("c", 0.0), ("d", 0.0)]

    def test_max_score_is_neighbour_head(self):
        index = TopSimilarIndex()
        assert index.max_score("a") == 0.0
        index.record("a", "b", 0.3)
        index.record("a", "c", 0.7)
        assert index.max_score("a") == 0.7
        assert index.max_score("d") == 0.0

    def test_rerecord_replaces_old_entry(self):
        index = TopSimilarIndex()
        index.record("a", "b", 0.9)
        index.record("a", "b", 0.1)
        assert index.top("a", 5) == [("b", 0.1)]
        assert index.max_score("a") == 0.1

    def test_remove_value_drops_its_pairs(self):
        index = TopSimilarIndex()
        index.record("a", "b", 0.5)
        index.record("a", "c", 0.4)
        index.remove_value("b")
        assert index.top("a", 5) == [("c", 0.4)]
        known, scores = index.snapshot()
        assert known == ("a", "c")
        assert scores == {("a", "c"): 0.4}

    def test_self_pair_is_ignored(self):
        index = TopSimilarIndex()
        index.record("a", "a", 1.0)
        assert index.top("a", 5) == []
        assert index.max_score("a") == 0.0


# -- model integration ------------------------------------------------------


class TestModelTopIndex:
    def test_enable_is_idempotent_and_backfills(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "ford", "chevy", 0.25)
        model.enable_top_index()
        model.enable_top_index()
        assert model.has_top_index
        assert model.top_similar("Make", "ford", n=1) == [("chevy", 0.25)]

    def test_pairs_returns_live_readonly_view(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "a", "b", 0.5)
        view = model.pairs("Make")
        assert isinstance(view, MappingProxyType)
        assert model.pairs("Make") is view  # memoised, no per-call copy
        with pytest.raises(TypeError):
            view[("a", "b")] = 0.9  # type: ignore[index]
        model.record("Make", "a", "c", 0.25)
        assert ("a", "c") in view  # live: later records show through

    def test_max_similarity_without_index_is_one(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "a", "b", 0.5)
        assert model.max_similarity("Make", "a") == 1.0
        model.enable_top_index()
        assert model.max_similarity("Make", "a") == 0.5
        assert model.max_similarity("Make", "zzz") == 0.0


# -- properties -------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_attributes=st.integers(min_value=2, max_value=3),
    n_values=st.integers(min_value=2, max_value=8),
    n_rows=st.integers(min_value=4, max_value=60),
    threshold=st.sampled_from([0.0, 0.1, 0.5]),
    bag_semantics=st.booleans(),
)
def test_indexed_mining_is_bit_identical(
    seed, n_attributes, n_values, n_rows, threshold, bag_semantics
):
    table = _random_table(random.Random(seed), n_attributes, n_values, n_rows)
    base = SimilarityMinerConfig(
        store_threshold=threshold, bag_semantics=bag_semantics
    )
    indexed = SimilarityMinerConfig(
        store_threshold=threshold,
        bag_semantics=bag_semantics,
        use_index=True,
    )
    base_model = ValueSimilarityMiner(base).mine(table)
    indexed_model = ValueSimilarityMiner(indexed).mine(table)
    assert _model_state(base_model) == _model_state(indexed_model)


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("prune_bound", [False, True])
@pytest.mark.parametrize("threshold", [0.0, 0.5])
def test_indexed_mining_composes_with_workers_and_prune(
    workers, prune_bound, threshold
):
    table = _random_table(random.Random(97), 3, 10, 150)
    base = SimilarityMinerConfig(store_threshold=threshold)
    composed = SimilarityMinerConfig(
        store_threshold=threshold,
        workers=workers,
        prune_bound=prune_bound,
        parallel_chunk_pairs=16,
        use_index=True,
        index_topk=True,
    )
    base_model = ValueSimilarityMiner(base).mine(table)
    composed_model = ValueSimilarityMiner(composed).mine(table)
    assert _model_state(base_model) == _model_state(composed_model)
    assert composed_model.has_top_index and not base_model.has_top_index


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_values=st.integers(min_value=2, max_value=8),
    n_rows=st.integers(min_value=4, max_value=50),
    bag_semantics=st.booleans(),
)
def test_skipped_pairs_have_vsim_exactly_zero(
    seed, n_values, n_rows, bag_semantics
):
    """The proof obligation behind candidate generation.

    Every grid pair the index omits must score VSim exactly 0, so no
    store threshold — including 0, where any positive score is kept —
    can distinguish indexed mining from the naive grid.
    """
    table = _random_table(random.Random(seed), 3, n_values, n_rows)
    miner = ValueSimilarityMiner(
        SimilarityMinerConfig(bag_semantics=bag_semantics)
    )
    by_attribute = miner.build_supertuples(table)
    grouped: dict[str, list] = {}
    for avpair, supertuple in by_attribute.items():
        grouped.setdefault(avpair.attribute, []).append(supertuple)
    weights = {name: 1.0 for name in table.schema.attribute_names}
    for attribute, supertuples in grouped.items():
        supertuples.sort(key=lambda st_: st_.avpair.value)
        weight_items = tuple(
            (name, weight)
            for name, weight in weights.items()
            if name != attribute
        )
        index = SuperTupleIndex(weight_items, bag_semantics)
        for supertuple in supertuples:
            index.add(supertuple)
        candidates = set(
            index.candidate_pairs([st_.avpair.value for st_ in supertuples])
        )
        skipped = [
            pair
            for pair in _pair_grid(len(supertuples))
            if pair not in candidates
        ]
        stored, _, _ = _evaluate_pairs(
            supertuples,
            weight_items,
            skipped,
            bag_semantics,
            store_threshold=0.0,
            prune=False,
        )
        assert stored == []  # every skipped pair scored exactly 0


@settings(max_examples=40, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.sampled_from("abcdefgh"),
            st.sampled_from("abcdefgh"),
            st.sampled_from([0.0, 0.1, 0.25, 0.25, 0.5, 1.0]),
        ),
        max_size=24,
    ),
    lonely=st.lists(st.sampled_from("wxyz"), max_size=3),
    n=st.integers(min_value=1, max_value=12),
)
def test_top_similar_index_matches_linear_scan(records, lonely, n):
    """Identical rankings, including ties and the zero-similarity fill."""
    linear = SimilarityModel(["A"])
    indexed = SimilarityModel(["A"])
    indexed.enable_top_index()
    for value in lonely:
        linear.register_value("A", value)
        indexed.register_value("A", value)
    for value_a, value_b, similarity in records:
        if value_a == value_b:
            continue
        linear.record("A", value_a, value_b, similarity)
        indexed.record("A", value_a, value_b, similarity)
    probes = sorted(linear.known_values("A")) + ["never-seen"]
    for probe in probes:
        assert indexed.top_similar("A", probe, n=n) == linear.top_similar(
            "A", probe, n=n
        )


@settings(max_examples=30, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.sampled_from("abcdef"),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=20,
    )
)
def test_incremental_index_matches_rebuild(operations):
    """Any add/remove history converges to the fresh-build index."""
    incremental = SuperTupleIndex(WEIGHTS)
    surviving: dict[str, SuperTuple] = {}
    for action, value, variant in operations:
        if action == "add":
            supertuple = _supertuple(
                value,
                {f"k{variant}": variant + 1} if variant else {},
                {f"m{variant % 2}": 1},
            )
            incremental.add(supertuple)
            surviving[value] = supertuple
        else:
            incremental.remove(value)
            surviving.pop(value, None)
    rebuilt = SuperTupleIndex(WEIGHTS)
    for supertuple in surviving.values():
        rebuilt.add(supertuple)
    assert incremental.snapshot() == rebuilt.snapshot()
    order = sorted(surviving)
    assert incremental.candidate_pairs(order) == rebuilt.candidate_pairs(order)
    for value in order:
        assert incremental.magnitudes(value) == rebuilt.magnitudes(value)
