"""Unit tests for the value-similarity graph (Figure 5 machinery)."""

from repro.simmining.estimator import SimilarityModel
from repro.simmining.graph import neighbors_above, similarity_graph, strongest_edges


def make_model() -> SimilarityModel:
    model = SimilarityModel(["Make"])
    for value in ("Ford", "Chevrolet", "Toyota", "BMW"):
        model.register_value("Make", value)
    model.record("Make", "Ford", "Chevrolet", 0.25)
    model.record("Make", "Ford", "Toyota", 0.16)
    model.record("Make", "Ford", "BMW", 0.05)
    model.record("Make", "Chevrolet", "Toyota", 0.12)
    return model


class TestSimilarityGraph:
    def test_threshold_prunes_edges(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.1)
        assert graph.has_edge("Ford", "Chevrolet")
        assert not graph.has_edge("Ford", "BMW")

    def test_isolated_nodes_kept(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.1)
        assert "BMW" in graph.nodes
        assert graph.degree("BMW") == 0

    def test_edge_weights(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.1)
        assert graph["Ford"]["Chevrolet"]["weight"] == 0.25

    def test_threshold_validation(self):
        import pytest

        with pytest.raises(ValueError):
            similarity_graph(make_model(), "Make", threshold=1.5)

    def test_zero_threshold_includes_all_recorded(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.0)
        assert graph.number_of_edges() == 4


class TestGraphQueries:
    def test_strongest_edges_sorted(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.0)
        edges = strongest_edges(graph, n=2)
        assert edges[0][2] == 0.25
        assert edges[0][:2] == ("Chevrolet", "Ford")

    def test_neighbors_above(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.1)
        neighbors = neighbors_above(graph, "Ford")
        assert neighbors == [("Chevrolet", 0.25), ("Toyota", 0.16)]

    def test_neighbors_of_absent_node(self):
        graph = similarity_graph(make_model(), "Make", threshold=0.1)
        assert neighbors_above(graph, "Nope") == []
