"""Unit tests for supertuples, AV-pairs and numeric binners."""

import pytest

from repro.simmining.avpair import AVPair
from repro.simmining.supertuple import (
    NumericBinner,
    build_binners,
    build_supertuple,
)


class TestAVPair:
    def test_as_query(self):
        query = AVPair("Make", "Ford").as_query()
        assert query.bound_attributes == ("Make",)
        assert query.equality_binding("Make") == "Ford"

    def test_describe(self):
        assert str(AVPair("Make", "Ford")) == "Make=Ford"

    def test_validation(self):
        with pytest.raises(ValueError):
            AVPair("", "Ford")
        with pytest.raises(ValueError):
            AVPair("Make", "")

    def test_ordering_and_hash(self):
        pairs = {AVPair("Make", "Ford"), AVPair("Make", "Ford")}
        assert len(pairs) == 1
        assert AVPair("Make", "A") < AVPair("Make", "B")


class TestNumericBinner:
    def test_bin_index_clamps(self):
        binner = NumericBinner("Price", 0, 100, 4)
        assert binner.bin_index(-5) == 0
        assert binner.bin_index(500) == 3
        assert binner.bin_index(30) == 1

    def test_labels(self):
        binner = NumericBinner("Price", 0, 100, 4)
        assert binner.label(10) == "0-25"
        assert binner.label(99) == "75-100"

    def test_degenerate_extent(self):
        binner = NumericBinner("Price", 5, 5, 3)
        assert binner.bin_index(5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericBinner("P", 0, 1, 0)
        with pytest.raises(ValueError):
            NumericBinner("P", 2, 1, 3)

    def test_build_binners(self, toy_table):
        binners = build_binners(toy_table, n_bins=5)
        assert set(binners) == {"Price", "Year"}
        assert binners["Price"].low == 7000
        assert binners["Price"].high == 17000


class TestBuildSupertuple:
    def test_excludes_bound_attribute(self, toy_table):
        avpair = AVPair("Make", "Toyota")
        rows = toy_table.rows(toy_table.hash_index("Make").lookup("Toyota"))
        supertuple = build_supertuple(avpair, rows, toy_table.schema)
        assert "Make" not in supertuple
        assert set(supertuple.attributes) == {"Model", "Price", "Year"}

    def test_bags_count_cooccurrences(self, toy_table):
        avpair = AVPair("Make", "Toyota")
        rows = toy_table.rows(toy_table.hash_index("Make").lookup("Toyota"))
        supertuple = build_supertuple(avpair, rows, toy_table.schema)
        assert supertuple.bag("Model").count("Camry") == 2
        assert supertuple.bag("Model").count("Corolla") == 1
        assert supertuple.answerset_size == 3

    def test_numeric_values_binned_when_binner_given(self, toy_table):
        binners = build_binners(toy_table, n_bins=2)
        avpair = AVPair("Make", "Ford")
        rows = toy_table.rows(toy_table.hash_index("Make").lookup("Ford"))
        supertuple = build_supertuple(avpair, rows, toy_table.schema, binners)
        price_keywords = set(supertuple.bag("Price"))
        assert all(isinstance(k, str) and "-" in k for k in price_keywords)

    def test_numeric_values_raw_without_binner(self, toy_table):
        avpair = AVPair("Make", "Ford")
        rows = toy_table.rows(toy_table.hash_index("Make").lookup("Ford"))
        supertuple = build_supertuple(avpair, rows, toy_table.schema)
        assert supertuple.bag("Price").count(7000) == 1

    def test_nulls_skipped(self, toy_schema):
        from repro.db.table import Table

        table = Table(toy_schema)
        table.insert(("Ford", None, None, 2001))
        supertuple = build_supertuple(
            AVPair("Make", "Ford"), table.rows(), toy_schema
        )
        assert len(supertuple.bag("Model")) == 0
        assert len(supertuple.bag("Year")) == 1

    def test_describe_mentions_bound_pair(self, toy_table):
        avpair = AVPair("Make", "Toyota")
        rows = toy_table.rows(toy_table.hash_index("Make").lookup("Toyota"))
        text = build_supertuple(avpair, rows, toy_table.schema).describe()
        assert "Make=Toyota" in text and "Model" in text
