"""Unit tests for the value-similarity miner and model."""

import pytest

from repro.simmining.estimator import (
    SimilarityMinerConfig,
    SimilarityModel,
    ValueSimilarityMiner,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityMinerConfig(numeric_bins=0)
        with pytest.raises(ValueError):
            SimilarityMinerConfig(min_value_count=0)
        with pytest.raises(ValueError):
            SimilarityMinerConfig(store_threshold=1.0)


class TestSimilarityModel:
    def test_identity_is_one(self):
        model = SimilarityModel(["Make"])
        assert model.similarity("Make", "Ford", "Ford") == 1.0

    def test_unknown_pair_is_zero(self):
        model = SimilarityModel(["Make"])
        assert model.similarity("Make", "Ford", "BMW") == 0.0

    def test_record_and_lookup_symmetric(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "Ford", "Chevrolet", 0.25)
        assert model.similarity("Make", "Ford", "Chevrolet") == 0.25
        assert model.similarity("Make", "Chevrolet", "Ford") == 0.25

    def test_record_validates(self):
        model = SimilarityModel(["Make"])
        with pytest.raises(KeyError):
            model.record("Nope", "a", "b", 0.5)
        with pytest.raises(ValueError):
            model.record("Make", "a", "b", 1.5)

    def test_top_similar_sorted(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "Ford", "Chevrolet", 0.25)
        model.record("Make", "Ford", "Toyota", 0.16)
        model.record("Make", "Ford", "Dodge", 0.15)
        top = model.top_similar("Make", "Ford", n=2)
        assert top == [("Chevrolet", 0.25), ("Toyota", 0.16)]

    def test_top_similar_excludes_self(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "Ford", "Chevrolet", 0.25)
        assert all(v != "Ford" for v, _ in model.top_similar("Make", "Ford"))

    def test_pair_count(self):
        model = SimilarityModel(["Make", "Model"])
        model.record("Make", "a", "b", 0.5)
        model.record("Model", "x", "y", 0.5)
        assert model.pair_count() == 2

    def test_register_value(self):
        model = SimilarityModel(["Make"])
        model.register_value("Make", "BMW")
        assert "BMW" in model.known_values("Make")


class TestMinerOnToyData(object):
    def test_mine_produces_values(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        model = miner.mine(toy_table)
        assert model.known_values("Make") == frozenset({"Toyota", "Honda", "Ford"})

    def test_min_value_count_prunes_rare_values(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=3)
        )
        model = miner.mine(toy_table)
        # Only Toyota and Honda appear 3x.
        assert model.known_values("Make") == frozenset({"Toyota", "Honda"})

    def test_similarity_in_unit_interval(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        model = miner.mine(toy_table)
        for pair, sim in model.pairs("Make").items():
            assert 0.0 <= sim <= 1.0, pair

    def test_attribute_subset(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        model = miner.mine(toy_table, attributes=("Make",))
        assert model.attributes == ("Make",)

    def test_non_categorical_attribute_rejected(self, toy_table):
        miner = ValueSimilarityMiner()
        with pytest.raises(ValueError):
            miner.build_supertuples(toy_table, attributes=("Price",))

    def test_importance_weights_change_scores(self, toy_table):
        config = SimilarityMinerConfig(min_value_count=1)
        uniform = ValueSimilarityMiner(config=config).mine(
            toy_table, attributes=("Make",)
        )
        price_only = ValueSimilarityMiner(
            config=config,
            importance_weights={"Price": 1.0},
        ).mine(toy_table, attributes=("Make",))
        pair = ("Honda", "Toyota")
        assert uniform.pairs("Make").get(pair) != price_only.pairs("Make").get(pair)

    def test_store_threshold_prunes(self, toy_table):
        config = SimilarityMinerConfig(min_value_count=1, store_threshold=0.99)
        model = ValueSimilarityMiner(config=config).mine(toy_table)
        assert model.pair_count() == 0

    def test_set_semantics_ablation_differs(self, toy_table):
        config_bag = SimilarityMinerConfig(min_value_count=1)
        config_set = SimilarityMinerConfig(min_value_count=1, bag_semantics=False)
        bag_model = ValueSimilarityMiner(config=config_bag).mine(toy_table)
        set_model = ValueSimilarityMiner(config=config_set).mine(toy_table)
        assert bag_model.pairs("Make") != set_model.pairs("Make")

    def test_timings_recorded(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        miner.mine(toy_table)
        assert miner.timings.supertuple_seconds >= 0.0
        assert miner.timings.total_seconds >= miner.timings.estimation_seconds


class TestMinerOnCarDB:
    @pytest.fixture(scope="class")
    def car_model(self, car_table):
        return ValueSimilarityMiner().mine(car_table, attributes=("Make", "Model"))

    def test_sibling_models_similar(self, car_model):
        # Camry and Accord are both popular midsize sedans.
        camry_accord = car_model.similarity("Model", "Camry", "Accord")
        camry_f150 = car_model.similarity("Model", "Camry", "F-150")
        assert camry_accord > camry_f150

    def test_economy_makes_cluster(self, car_model):
        kia_hyundai = car_model.similarity("Make", "Kia", "Hyundai")
        kia_bmw = car_model.similarity("Make", "Kia", "BMW")
        assert kia_hyundai > kia_bmw

    def test_ford_chevrolet_strong(self, car_model):
        ford_chev = car_model.similarity("Make", "Ford", "Chevrolet")
        ford_bmw = car_model.similarity("Make", "Ford", "BMW")
        assert ford_chev > ford_bmw


class TestConfigFastPaths:
    def test_workers_validated(self):
        with pytest.raises(ValueError):
            SimilarityMinerConfig(workers=0)

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            SimilarityMinerConfig(parallel_chunk_pairs=0)


class TestTopSimilarRegression:
    """`top_similar` moved to `heapq.nsmallest`; Table 3 rows must not move."""

    def _reference(self, model, attribute, value, n):
        scored = [
            (other, model.similarity(attribute, value, other))
            for other in model.known_values(attribute)
            if other != value
        ]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0]))[:n]

    def test_matches_full_sort_on_cardb(self, car_table):
        model = ValueSimilarityMiner().mine(car_table, attributes=("Make",))
        for value in sorted(model.known_values("Make")):
            for n in (1, 3, 10):
                assert model.top_similar("Make", value, n=n) == self._reference(
                    model, "Make", value, n
                )

    def test_tie_break_is_lexicographic(self):
        model = SimilarityModel(["Make"])
        model.record("Make", "Ford", "Chevrolet", 0.25)
        model.record("Make", "Ford", "Buick", 0.25)
        model.record("Make", "Ford", "Dodge", 0.10)
        assert model.top_similar("Make", "Ford", n=2) == [
            ("Buick", 0.25),
            ("Chevrolet", 0.25),
        ]


class TestStaleSupertuples:
    def test_estimate_rebuilds_for_uncovered_attributes(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        miner.build_supertuples(toy_table, attributes=("Make",))
        model = miner.estimate(toy_table, attributes=("Make", "Model"))
        # Previously the stale Make-only build was silently reused and
        # Model produced no values (and no pairs) at all.
        assert model.known_values("Model")
        assert model.pairs("Model")

    def test_estimate_reuses_covering_build(self, toy_table):
        miner = ValueSimilarityMiner(
            config=SimilarityMinerConfig(min_value_count=1)
        )
        supertuples = miner.build_supertuples(toy_table)
        miner.estimate(toy_table, attributes=("Make",))
        assert miner._supertuples is supertuples
