"""Chrome trace-event exporter tests."""

import json

from repro.obs import to_chrome_trace, write_chrome_trace
from repro.obs.tracing import Tracer


def _recorded_tree():
    tracer = Tracer()
    with tracer.span("engine.answer", query="Make=Ford"):
        with tracer.span("db.probe", rows=4):
            pass
        with tracer.span("engine.ranking"):
            pass
    return tracer.traces()


class TestToChromeTrace:
    def test_one_complete_event_per_span(self):
        payload = to_chrome_trace(_recorded_tree())
        names = [event["name"] for event in payload["traceEvents"]]
        assert names == ["engine.answer", "db.probe", "engine.ranking"]
        assert payload["displayTimeUnit"] == "ms"

    def test_events_use_complete_phase_and_microseconds(self):
        payload = to_chrome_trace(_recorded_tree())
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
            assert event["dur"] >= 0.0
            assert event["ts"] > 0.0

    def test_category_is_the_name_prefix(self):
        payload = to_chrome_trace(_recorded_tree())
        categories = {e["name"]: e["cat"] for e in payload["traceEvents"]}
        assert categories == {
            "engine.answer": "engine",
            "db.probe": "db",
            "engine.ranking": "engine",
        }

    def test_args_carry_attributes_status_and_trace_id(self):
        payload = to_chrome_trace(_recorded_tree())
        by_name = {e["name"]: e["args"] for e in payload["traceEvents"]}
        assert by_name["engine.answer"]["query"] == "Make=Ford"
        assert by_name["db.probe"]["rows"] == 4
        trace_ids = {args["trace_id"] for args in by_name.values()}
        assert len(trace_ids) == 1
        assert all(args["status"] == "ok" for args in by_name.values())

    def test_error_span_includes_error_arg(self):
        tracer = Tracer()
        try:
            with tracer.span("engine.answer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        payload = to_chrome_trace(tracer.traces())
        (event,) = payload["traceEvents"]
        assert event["args"]["status"] == "error"
        assert "boom" in event["args"]["error"]


class TestWriteChromeTrace:
    def test_writes_valid_json_and_returns_count(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_recorded_tree(), str(path))
        assert count == 3
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert len(loaded["traceEvents"]) == 3

    def test_empty_roots_still_valid(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace([], str(path)) == 0
        assert json.loads(path.read_text(encoding="utf-8")) == {
            "displayTimeUnit": "ms",
            "traceEvents": [],
        }
