"""Flight-recorder tests: phases + fields become one wide event."""

import time

from repro.obs import EventLog, FlightRecorder


def _log() -> EventLog:
    log = EventLog()
    log.enabled = True
    return log


class TestFlightRecorder:
    def test_finish_emits_one_event_with_fields(self):
        log = _log()
        recorder = FlightRecorder(log, "engine.answer")
        recorder.note(probes_issued=4, dataset="cardb")
        record = recorder.finish(answers=5)
        assert record is not None
        assert len(log) == 1
        assert record["event"] == "engine.answer"
        assert record["probes_issued"] == 4
        assert record["dataset"] == "cardb"
        assert record["answers"] == 5

    def test_phases_become_seconds_fields(self):
        recorder = FlightRecorder(_log(), "engine.answer")
        with recorder.phase("mapping"):
            time.sleep(0.002)
        with recorder.phase("ranking"):
            pass
        record = recorder.finish()
        assert record["mapping_seconds"] > 0.0
        assert record["ranking_seconds"] >= 0.0
        assert record["total_seconds"] >= record["mapping_seconds"]

    def test_repeated_phases_accumulate(self):
        recorder = FlightRecorder(_log(), "engine.answer")
        with recorder.phase("expansion"):
            time.sleep(0.001)
        first = recorder._phases["expansion"]
        with recorder.phase("expansion"):
            time.sleep(0.001)
        assert recorder._phases["expansion"] > first
        assert "expansion_seconds" in recorder.finish()

    def test_carries_a_trace_id(self):
        log = _log()
        recorder = FlightRecorder(log, "engine.answer")
        assert recorder.trace_id.startswith("t-")
        assert recorder.finish()["trace_id"] == recorder.trace_id

    def test_trace_id_can_be_overwritten_before_finish(self):
        recorder = FlightRecorder(_log(), "engine.answer")
        recorder.trace_id = "t-000042"
        assert recorder.finish()["trace_id"] == "t-000042"

    def test_finish_fields_override_notes(self):
        recorder = FlightRecorder(_log(), "engine.answer")
        recorder.note(answers=0)
        assert recorder.finish(answers=7)["answers"] == 7

    def test_phase_survives_exceptions(self):
        recorder = FlightRecorder(_log(), "engine.answer")
        try:
            with recorder.phase("mapping"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert recorder._phases["mapping"] >= 0.0
