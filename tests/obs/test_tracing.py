"""Unit tests for span tracing and the no-op path."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import NOOP_SPAN, OBS, render_span_tree, span_summary
from repro.obs.tracing import NullTracer, TraceContext, Tracer


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert [span.name for span in tracer.last_trace().walk()] == [
            "outer",
            "inner.a",
            "inner.b",
        ]

    def test_only_roots_enter_the_ring(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [root.name for root in tracer.traces()] == ["root"]

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(max_traces=3)
        for i in range(10):
            with tracer.span(f"root-{i}"):
                pass
        assert [root.name for root in tracer.traces()] == [
            "root-7",
            "root-8",
            "root-9",
        ]

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer()
        seen = []

        def work(label: str) -> None:
            with tracer.span(f"root-{label}"):
                with tracer.span(f"child-{label}"):
                    pass
            seen.append(label)

        threads = [
            threading.Thread(target=work, args=(str(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 4
        roots = tracer.traces()
        assert len(roots) == 4
        for root in roots:
            assert len(root.children) == 1


class TestSpanLifecycle:
    def test_timing_and_status(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            assert span.duration_seconds is None
            assert span.status == "in_progress"
        assert span.status == "ok"
        assert span.duration_seconds is not None and span.duration_seconds >= 0
        assert span.attributes["items"] == 3

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("work"):
                raise RuntimeError("boom")
        root = tracer.last_trace()
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error

    def test_as_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        payload = tracer.last_trace().as_dict()
        assert payload["name"] == "outer"
        assert payload["attributes"] == {"k": 1}
        assert payload["children"][0]["name"] == "inner"


class TestDisabledMode:
    def test_disabled_runtime_hands_out_noop(self):
        OBS.disable()
        assert OBS.span("anything", key="value") is NOOP_SPAN

    def test_noop_span_accepts_the_full_api(self):
        with NOOP_SPAN as span:
            span.set_attribute("key", "value")

    def test_enabled_runtime_records(self, obs_enabled):
        with obs_enabled.span("root") as span:
            span.set_attribute("k", 1)
        assert obs_enabled.tracer.last_trace().name == "root"


class TestTraceIds:
    def test_root_gets_a_fresh_id_children_inherit(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
        assert root.trace_id.startswith("t-")

    def test_distinct_roots_get_distinct_ids(self):
        tracer = Tracer()
        with tracer.span("a") as first:
            pass
        with tracer.span("b") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_as_dict_includes_trace_id(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.last_trace().as_dict()["trace_id"].startswith("t-")


class TestCrossThreadPropagation:
    def test_capture_returns_the_current_span(self):
        tracer = Tracer()
        assert tracer.capture().span is None
        with tracer.span("root") as root:
            context = tracer.capture()
            assert context.span is root
            assert context.trace_id == root.trace_id

    def test_activate_adopts_the_captured_parent(self):
        tracer = Tracer()
        results = []

        def worker(context: TraceContext) -> None:
            with tracer.activate(context):
                with tracer.span("plan.batch_probe") as span:
                    results.append(span)

        with tracer.span("engine.answer") as root:
            thread = threading.Thread(target=worker, args=(tracer.capture(),))
            thread.start()
            thread.join()
        (probe,) = results
        assert probe in root.children
        assert probe.trace_id == root.trace_id
        assert probe.tid != root.tid

    def test_borrowed_parent_never_enters_the_ring(self):
        tracer = Tracer()

        def worker(context: TraceContext) -> None:
            with tracer.activate(context):
                with tracer.span("plan.batch_probe"):
                    pass

        with tracer.span("engine.answer"):
            thread = threading.Thread(target=worker, args=(tracer.capture(),))
            thread.start()
            thread.join()
            # The worker popped down to the borrowed parent: no root
            # completed on its side.
            assert tracer.traces() == []
        assert [r.name for r in tracer.traces()] == ["engine.answer"]

    def test_concurrent_workers_all_attach_to_the_parent(self):
        tracer = Tracer()

        def worker(context: TraceContext, index: int) -> None:
            with tracer.activate(context):
                with tracer.span(f"plan.batch_probe_{index}"):
                    pass

        with tracer.span("engine.answer") as root:
            context = tracer.capture()
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(worker, context, index) for index in range(16)
                ]
                for future in futures:
                    future.result()
        assert len(root.children) == 16
        assert {child.trace_id for child in root.children} == {root.trace_id}

    def test_activate_restores_the_previous_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("borrowed") as borrowed:
                pass
            with tracer.activate(TraceContext(borrowed)):
                assert tracer.current() is borrowed
            assert tracer.current() is outer

    def test_activate_none_context_is_a_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            with tracer.span("root"):
                pass
        assert [r.name for r in tracer.traces()] == ["root"]
        with tracer.activate(TraceContext(None)):
            assert tracer.current() is None

    def test_null_tracer_capture_and_activate(self):
        tracer = NullTracer()
        context = tracer.capture()
        assert context.span is None
        with tracer.activate(context):
            assert tracer.current() is None


class TestSpanSummary:
    def test_aggregates_by_name_sorted_by_total(self):
        tracer = Tracer()
        with tracer.span("engine.answer"):
            for _ in range(3):
                with tracer.span("db.probe"):
                    pass
        rows = span_summary(tracer.traces())
        by_name = {row["name"]: row for row in rows}
        assert by_name["db.probe"]["count"] == 3
        assert by_name["engine.answer"]["count"] == 1
        assert rows[0]["name"] == "engine.answer"  # longest total first
        assert all(row["errors"] == 0 for row in rows)

    def test_counts_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("engine.answer"):
                raise RuntimeError("boom")
        (row,) = span_summary(tracer.traces())
        assert row["errors"] == 1


class TestRendering:
    def test_render_span_tree(self):
        tracer = Tracer()
        with tracer.span("outer", items=2):
            with tracer.span("inner"):
                pass
        text = render_span_tree(tracer.last_trace())
        lines = text.splitlines()
        assert lines[0].startswith("outer") and "[items=2]" in lines[0]
        assert lines[1].startswith("  inner")

    def test_render_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("bad input")
        text = render_span_tree(tracer.last_trace())
        assert " !" in text.splitlines()[0]
        assert "error: ValueError: bad input" in text
