"""Unit tests for span tracing and the no-op path."""

import threading

import pytest

from repro.obs import NOOP_SPAN, OBS, render_span_tree
from repro.obs.tracing import Tracer


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert [span.name for span in tracer.last_trace().walk()] == [
            "outer",
            "inner.a",
            "inner.b",
        ]

    def test_only_roots_enter_the_ring(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [root.name for root in tracer.traces()] == ["root"]

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(max_traces=3)
        for i in range(10):
            with tracer.span(f"root-{i}"):
                pass
        assert [root.name for root in tracer.traces()] == [
            "root-7",
            "root-8",
            "root-9",
        ]

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer()
        seen = []

        def work(label: str) -> None:
            with tracer.span(f"root-{label}"):
                with tracer.span(f"child-{label}"):
                    pass
            seen.append(label)

        threads = [
            threading.Thread(target=work, args=(str(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 4
        roots = tracer.traces()
        assert len(roots) == 4
        for root in roots:
            assert len(root.children) == 1


class TestSpanLifecycle:
    def test_timing_and_status(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            assert span.duration_seconds is None
            assert span.status == "in_progress"
        assert span.status == "ok"
        assert span.duration_seconds is not None and span.duration_seconds >= 0
        assert span.attributes["items"] == 3

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("work"):
                raise RuntimeError("boom")
        root = tracer.last_trace()
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error

    def test_as_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        payload = tracer.last_trace().as_dict()
        assert payload["name"] == "outer"
        assert payload["attributes"] == {"k": 1}
        assert payload["children"][0]["name"] == "inner"


class TestDisabledMode:
    def test_disabled_runtime_hands_out_noop(self):
        OBS.disable()
        assert OBS.span("anything", key="value") is NOOP_SPAN

    def test_noop_span_accepts_the_full_api(self):
        with NOOP_SPAN as span:
            span.set_attribute("key", "value")

    def test_enabled_runtime_records(self, obs_enabled):
        with obs_enabled.span("root") as span:
            span.set_attribute("k", 1)
        assert obs_enabled.tracer.last_trace().name == "root"


class TestRendering:
    def test_render_span_tree(self):
        tracer = Tracer()
        with tracer.span("outer", items=2):
            with tracer.span("inner"):
                pass
        text = render_span_tree(tracer.last_trace())
        lines = text.splitlines()
        assert lines[0].startswith("outer") and "[items=2]" in lines[0]
        assert lines[1].startswith("  inner")

    def test_render_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("bad input")
        text = render_span_tree(tracer.last_trace())
        assert " !" in text.splitlines()[0]
        assert "error: ValueError: bad input" in text
