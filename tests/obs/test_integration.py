"""End-to-end observability: build a model, answer a query, inspect.

These tests pin the acceptance criteria of the observability PR: a
traced engine query yields the documented span tree, and the metrics
snapshot covers every instrumented namespace in both export formats.
"""

import json

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model
from repro.core.query import ImpreciseQuery
from repro.datasets.cardb import cardb_webdb
from repro.obs import to_json, to_prometheus


@pytest.fixture(scope="module")
def traced_run():
    """One observed build + query, shared by the assertions below."""
    from repro.obs import OBS

    OBS.reset()
    OBS.enable()
    try:
        webdb = cardb_webdb(400, seed=3)
        model = build_model(
            webdb,
            sample_size=200,
            settings=AIMQSettings(max_relaxation_level=2),
        )
        engine = model.engine(webdb)
        answers = engine.answer(
            ImpreciseQuery.like("CarDB", Make="Ford"), k=5
        )
        yield {
            "model": model,
            "answers": answers,
            "snapshot": OBS.registry.snapshot(),
            "traces": OBS.tracer.traces(),
        }
    finally:
        OBS.disable()
        OBS.reset()


NAMESPACES = ("repro_db_", "repro_afd_", "repro_simmining_", "repro_core_")


class TestSnapshotCoverage:
    def test_every_layer_contributes(self, traced_run):
        names = {m["name"] for m in traced_run["snapshot"]["metrics"]}
        for prefix in NAMESPACES:
            assert any(name.startswith(prefix) for name in names), prefix

    def test_snapshot_is_schema_stable(self, traced_run):
        for metric in traced_run["snapshot"]["metrics"]:
            assert set(metric) == {"name", "kind", "help", "series"}
            assert metric["kind"] in ("counter", "gauge", "histogram")
            assert metric["series"], metric["name"]

    def test_both_export_formats_cover_all_namespaces(self, traced_run):
        rendered_json = to_json(traced_run["snapshot"])
        rendered_prom = to_prometheus(traced_run["snapshot"])
        json.loads(rendered_json)
        for prefix in NAMESPACES:
            assert prefix in rendered_json
            assert prefix in rendered_prom


class TestSpanTree:
    def test_engine_answer_span_taxonomy(self, traced_run):
        root = next(
            t for t in traced_run["traces"] if t.name == "engine.answer"
        )
        names = {span.name for span in root.walk()}
        assert "engine.base_query_mapping" in names
        assert "engine.relaxation_level" in names
        assert "engine.ranking" in names
        assert root.status == "ok"

    def test_build_model_span_taxonomy(self, traced_run):
        root = next(
            t for t in traced_run["traces"] if t.name == "pipeline.build_model"
        )
        names = {span.name for span in root.walk()}
        assert {
            "pipeline.probing",
            "pipeline.dependency_mining",
            "afd.tane.mine",
            "simmining.supertuples",
            "simmining.estimate",
        } <= names

    def test_build_timings_agree_with_spans(self, traced_run):
        """BuildTimings is derived from the spans, so they match exactly."""
        model = traced_run["model"]
        root = next(
            t for t in traced_run["traces"] if t.name == "pipeline.build_model"
        )
        totals: dict[str, float] = {}
        for span in root.walk():
            totals[span.name] = totals.get(span.name, 0.0) + (
                span.duration_seconds or 0.0
            )
        timings = model.timings
        assert timings.probing_seconds == pytest.approx(
            totals["pipeline.probing"], rel=1e-9
        )
        assert timings.dependency_mining_seconds == pytest.approx(
            totals["pipeline.dependency_mining"], rel=1e-9
        )
        assert timings.supertuple_seconds == pytest.approx(
            totals["simmining.supertuples"], rel=1e-9
        )
        assert timings.similarity_estimation_seconds == pytest.approx(
            totals["simmining.estimate"], rel=1e-9
        )


class TestDisabledMode:
    def test_disabled_run_records_nothing(self):
        from repro.obs import OBS

        OBS.disable()
        OBS.reset()
        webdb = cardb_webdb(200, seed=5)
        model = build_model(
            webdb,
            sample_size=100,
            settings=AIMQSettings(max_relaxation_level=1),
        )
        engine = model.engine(webdb)
        answers = engine.answer(ImpreciseQuery.like("CarDB", Make="Ford"), k=3)
        assert answers.answers
        assert OBS.registry.snapshot() == {"metrics": []}
        assert OBS.tracer.traces() == []
        # The timing structs still work without observability.
        assert model.timings.total_seconds > 0
