"""Observability test fixtures: an isolated, enabled runtime."""

from __future__ import annotations

import pytest

from repro.obs import OBS


@pytest.fixture()
def obs_enabled():
    """Enable the global runtime with clean state; restore on exit.

    ``OBS`` is process-wide, so every test that records through it must
    reset before and after to stay independent of test ordering.
    """
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()
