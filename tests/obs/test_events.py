"""Unit tests for the bounded wide-event log."""

import json

import pytest

from repro.obs import EventLog


def enabled_log(**kwargs) -> EventLog:
    log = EventLog(**kwargs)
    log.enabled = True
    return log


class TestEmission:
    def test_disabled_by_default_and_emit_is_noop(self):
        log = EventLog()
        assert log.emit("engine.answer", probes=3) is None
        assert len(log) == 0

    def test_emit_returns_the_stored_record(self):
        log = enabled_log()
        record = log.emit("engine.answer", probes_issued=3, degraded=False)
        assert record is not None
        assert record["event"] == "engine.answer"
        assert record["probes_issued"] == 3
        assert record["degraded"] is False
        assert log.events() == [record]

    def test_records_carry_monotonic_seq_and_timestamp(self):
        log = enabled_log()
        first = log.emit("engine.answer", n=1)
        second = log.emit("engine.answer", n=2)
        assert second["seq"] == first["seq"] + 1
        assert second["ts"] >= first["ts"]

    def test_ring_is_bounded_oldest_dropped(self):
        log = enabled_log(capacity=3)
        for index in range(6):
            log.emit("engine.answer", n=index)
        assert [record["n"] for record in log.events()] == [3, 4, 5]
        assert log.last()["n"] == 5

    def test_reset_clears_records_but_keeps_flags(self):
        log = enabled_log()
        log.probe_events = True
        log.emit("engine.answer", n=1)
        log.reset()
        assert len(log) == 0
        assert log.enabled and log.probe_events


class TestValidation:
    def test_rejects_undotted_or_camelcase_event_names(self):
        log = enabled_log()
        for bad in ("answer", "Engine.Answer", "engine.", "engine..answer"):
            with pytest.raises(ValueError):
                log.emit(bad, n=1)

    def test_rejects_bad_field_names(self):
        log = enabled_log()
        with pytest.raises(ValueError):
            log.emit("engine.answer", probesIssued=1)

    def test_rejects_reserved_field_names(self):
        log = enabled_log()
        for reserved in ("event", "ts", "seq"):
            with pytest.raises(ValueError):
                log.emit("engine.answer", **{reserved: 1})

    def test_rejects_non_scalar_values(self):
        log = enabled_log()
        with pytest.raises(TypeError):
            log.emit("engine.answer", steps=[1, 2])

    def test_none_is_a_legal_value(self):
        log = enabled_log()
        record = log.emit("engine.answer", threshold=None)
        assert record["threshold"] is None


class TestJsonl:
    def test_to_jsonl_one_object_per_line(self):
        log = enabled_log()
        log.emit("engine.answer", n=1)
        log.emit("db.probe", rows=4)
        lines = log.to_jsonl().strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == ["engine.answer", "db.probe"]

    def test_write_jsonl_round_trips(self, tmp_path):
        log = enabled_log()
        log.emit("engine.answer", probes_issued=3, query="Make=Ford")
        path = tmp_path / "events.jsonl"
        written = log.write_jsonl(str(path))
        assert written == 1
        loaded = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert loaded == log.events()
