"""Exporter tests: JSON and Prometheus text renderings of one snapshot."""

import json

import pytest

from repro.obs import to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_db_probes_total", "Probes issued.", labels=("kind",)
    ).labels(kind="select").inc(4)
    registry.gauge("repro_afd_lattice_level_size", "Nodes.", labels=("level",)).labels(
        level=2
    ).set(21)
    latency = registry.histogram(
        "repro_db_probe_seconds", "Probe latency.", buckets=(0.01, 0.1)
    )
    latency.observe(0.004)
    latency.observe(0.04)
    latency.observe(0.4)
    return registry


class TestJson:
    def test_round_trips_through_json(self, populated):
        parsed = json.loads(to_json(populated))
        assert parsed == populated.snapshot()

    def test_accepts_prebuilt_snapshot(self, populated):
        snapshot = populated.snapshot()
        assert json.loads(to_json(snapshot)) == snapshot

    def test_quantiles_present_in_json_only(self, populated):
        parsed = json.loads(to_json(populated))
        histogram = next(
            m for m in parsed["metrics"] if m["kind"] == "histogram"
        )
        assert "quantiles" in histogram["series"][0]
        assert "quantile" not in to_prometheus(populated)


class TestPrometheus:
    def test_help_and_type_lines(self, populated):
        text = to_prometheus(populated)
        assert "# HELP repro_db_probes_total Probes issued." in text
        assert "# TYPE repro_db_probes_total counter" in text
        assert "# TYPE repro_afd_lattice_level_size gauge" in text
        assert "# TYPE repro_db_probe_seconds histogram" in text

    def test_series_lines(self, populated):
        lines = to_prometheus(populated).splitlines()
        assert 'repro_db_probes_total{kind="select"} 4' in lines
        assert 'repro_afd_lattice_level_size{level="2"} 21' in lines

    def test_histogram_convention(self, populated):
        lines = to_prometheus(populated).splitlines()
        assert 'repro_db_probe_seconds_bucket{le="0.01"} 1' in lines
        assert 'repro_db_probe_seconds_bucket{le="0.1"} 2' in lines
        assert 'repro_db_probe_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_db_probe_seconds_count 3" in lines
        assert any(
            line.startswith("repro_db_probe_seconds_sum ") for line in lines
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("text",)).labels(
            text='say "hi"\nplease\\now'
        ).inc()
        text = to_prometheus(registry)
        assert r'text="say \"hi\"\nplease\\now"' in text

    def test_empty_registry_renders_terminator_only(self):
        assert to_prometheus(MetricsRegistry()) == "# EOF\n"
        assert json.loads(to_json(MetricsRegistry())) == {"metrics": []}

    def test_ends_with_eof_terminator(self, populated):
        text = to_prometheus(populated)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert lines.count("# EOF") == 1


def _bucket_lines(text: str, name: str) -> list[tuple[str, int]]:
    """``(le, cumulative)`` pairs for one label-less histogram family."""
    pairs: list[tuple[str, int]] = []
    for line in text.splitlines():
        if not line.startswith(f"{name}_bucket{{"):
            continue
        labels, _, value = line.partition("} ")
        le = labels.split('le="', 1)[1].rstrip('"')
        pairs.append((le, int(value)))
    return pairs


class TestPrometheusRoundTrip:
    """Scrape-side invariants of the rendered histogram series."""

    def test_buckets_are_cumulative_and_monotonic(self, populated):
        pairs = _bucket_lines(to_prometheus(populated), "repro_db_probe_seconds")
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)

    def test_terminal_bucket_is_inf(self, populated):
        pairs = _bucket_lines(to_prometheus(populated), "repro_db_probe_seconds")
        assert pairs[-1][0] == "+Inf"

    def test_inf_bucket_equals_count(self, populated):
        text = to_prometheus(populated)
        pairs = _bucket_lines(text, "repro_db_probe_seconds")
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_db_probe_seconds_count ")
        )
        assert pairs[-1][1] == int(count_line.rsplit(" ", 1)[1])

    def test_labelled_histogram_keeps_invariants(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_test_latency_seconds",
            "Labelled latency.",
            labels=("phase",),
            buckets=(0.1, 1.0),
        )
        family.labels(phase="map").observe(0.05)
        family.labels(phase="map").observe(5.0)
        family.labels(phase="rank").observe(0.5)
        text = to_prometheus(registry)
        for phase, expected_count in (("map", 2), ("rank", 1)):
            rows = [
                line
                for line in text.splitlines()
                if line.startswith("repro_test_latency_seconds_bucket")
                and f'phase="{phase}"' in line
            ]
            counts = [int(line.rsplit(" ", 1)[1]) for line in rows]
            assert counts == sorted(counts)
            assert rows[-1].count('le="+Inf"') == 1
            assert counts[-1] == expected_count
