"""Unit tests for the metrics registry and its instruments."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import StreamingQuantile


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        family = registry.counter("probes_total", "probes")
        family.inc()
        family.inc(2.5)
        assert family.unlabelled().value == 3.5

    def test_negative_increment_rejected(self, registry):
        family = registry.counter("probes_total")
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_labelled_series_are_independent(self, registry):
        family = registry.counter("probes_total", labels=("kind",))
        family.labels(kind="select").inc(3)
        family.labels(kind="count").inc()
        assert family.labels(kind="select").value == 3
        assert family.labels(kind="count").value == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth").unlabelled()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_buckets_are_cumulative(self, registry):
        histogram = registry.histogram(
            "latency", buckets=(0.01, 0.1, 1.0)
        ).unlabelled()
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (0.01, 1),
            (0.1, 3),
            (1.0, 4),
            (float("inf"), 5),
        ]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(5.605)
        assert histogram.min == 0.005 and histogram.max == 5.0

    def test_quantiles_are_plausible(self, registry):
        histogram = registry.histogram("latency").unlabelled()
        for i in range(1, 101):
            histogram.observe(float(i))
        median = histogram.quantile(0.5)
        assert median is not None and 40 <= median <= 60

    def test_empty_quantile_is_none(self, registry):
        histogram = registry.histogram("latency").unlabelled()
        assert histogram.quantile(0.5) is None


class TestStreamingQuantile:
    def test_exact_below_capacity(self):
        sketch = StreamingQuantile(capacity=100)
        for i in range(1, 11):
            sketch.observe(float(i))
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 10.0
        assert sketch.quantile(0.5) == pytest.approx(5.5)

    def test_reservoir_bounded_and_deterministic(self):
        first = StreamingQuantile(capacity=64, seed=3)
        second = StreamingQuantile(capacity=64, seed=3)
        for i in range(10_000):
            first.observe(float(i))
            second.observe(float(i))
        assert first.seen == 10_000
        assert first.quantile(0.5) == second.quantile(0.5)
        median = first.quantile(0.5)
        assert median is not None and 2_000 <= median <= 8_000


class TestFamilySchema:
    def test_family_creation_is_idempotent(self, registry):
        first = registry.counter("probes_total", labels=("kind",))
        second = registry.counter("probes_total", labels=("kind",))
        assert first is second

    def test_kind_conflict_raises(self, registry):
        registry.counter("probes_total")
        with pytest.raises(ValueError):
            registry.gauge("probes_total")

    def test_label_schema_conflict_raises(self, registry):
        registry.counter("probes_total", labels=("kind",))
        with pytest.raises(ValueError):
            registry.counter("probes_total", labels=("kind", "shape"))

    def test_wrong_label_binding_raises(self, registry):
        family = registry.counter("probes_total", labels=("kind",))
        with pytest.raises(ValueError):
            family.labels(shape="eq")
        with pytest.raises(ValueError):
            family.labels()

    def test_unlabelled_requires_label_free_family(self, registry):
        family = registry.counter("probes_total", labels=("kind",))
        with pytest.raises(ValueError):
            family.unlabelled()

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("1probes")
        with pytest.raises(ValueError):
            registry.counter("pro bes")
        with pytest.raises(ValueError):
            registry.counter("")


class TestSnapshot:
    def test_schema_stable_keys(self, registry):
        registry.counter("a_total", "help a").inc()
        registry.gauge("b_level", labels=("x",)).labels(x="1").set(2)
        registry.histogram("c_seconds").observe(0.2)
        snapshot = registry.snapshot()
        names = [m["name"] for m in snapshot["metrics"]]
        assert names == sorted(names) == ["a_total", "b_level", "c_seconds"]
        for metric in snapshot["metrics"]:
            assert set(metric) == {"name", "kind", "help", "series"}
            for series in metric["series"]:
                if metric["kind"] == "histogram":
                    assert set(series) == {
                        "labels",
                        "count",
                        "sum",
                        "min",
                        "max",
                        "buckets",
                        "quantiles",
                    }
                    assert "+Inf" in series["buckets"]
                else:
                    assert set(series) == {"labels", "value"}

    def test_concurrent_increments_are_not_lost(self, registry):
        family = registry.counter("hits_total")

        def work() -> None:
            for _ in range(1_000):
                family.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert family.unlabelled().value == 8_000


class TestWorkerThreadSafety:
    """Registry correctness under batch-worker-style concurrency.

    Mirrors the planner's dispatch shape (`--batch-workers > 1`): a
    small pool of worker threads hammering the same families the db
    facade and retrier touch, with exact totals asserted afterwards.
    """

    def test_concurrent_labelled_incs_are_exact(self, registry):
        from concurrent.futures import ThreadPoolExecutor

        family = registry.counter("probes_total", labels=("kind",))

        def work(kind: str) -> None:
            for _ in range(500):
                family.labels(kind=kind).inc()

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(work, kind)
                for kind in ("query", "count", "query", "count")
            ]
            for future in futures:
                future.result()
        assert family.labels(kind="query").value == 1_000
        assert family.labels(kind="count").value == 1_000

    def test_concurrent_observes_are_exact(self, registry):
        from concurrent.futures import ThreadPoolExecutor

        family = registry.histogram("latency_seconds", buckets=(0.5,))

        def work() -> None:
            for index in range(400):
                family.observe(0.25 if index % 2 == 0 else 0.75)

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(work) for _ in range(4)]
            for future in futures:
                future.result()
        instrument = family.unlabelled()
        assert instrument.count == 1_600
        assert instrument.sum == pytest.approx(1_600 * 0.5)
        (series,) = registry.snapshot()["metrics"][0]["series"]
        assert series["buckets"]["0.5"] == 800
        assert series["buckets"]["+Inf"] == 1_600

    def test_concurrent_family_registration_yields_one_family(self, registry):
        from concurrent.futures import ThreadPoolExecutor

        def work() -> None:
            for _ in range(200):
                registry.counter("races_total", "Races.").inc()

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(work) for _ in range(4)]
            for future in futures:
                future.result()
        (metric,) = registry.snapshot()["metrics"]
        assert metric["name"] == "races_total"
        assert metric["series"][0]["value"] == 800
