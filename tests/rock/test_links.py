"""Unit tests for ROCK link computation."""

from repro.rock.links import LinkMatrix, compute_links


class TestLinkMatrix:
    def test_symmetric(self):
        matrix = LinkMatrix(3)
        matrix.increment(0, 1)
        assert matrix.link(0, 1) == 1
        assert matrix.link(1, 0) == 1

    def test_default_zero(self):
        assert LinkMatrix(3).link(0, 2) == 0

    def test_pairs_deterministic(self):
        matrix = LinkMatrix(3)
        matrix.increment(2, 0)
        matrix.increment(0, 1, amount=3)
        assert matrix.pairs() == [(0, 1, 3), (0, 2, 1)]

    def test_len_counts_linked_pairs(self):
        matrix = LinkMatrix(3)
        matrix.increment(0, 1)
        matrix.increment(1, 2)
        assert len(matrix) == 2


class TestComputeLinks:
    def test_common_neighbor_counting(self):
        # All three points are mutual neighbours (self included), so
        # each pair shares all 3 points as common neighbours.
        neighbors = [[0, 1, 2], [0, 1, 2], [0, 1, 2]]
        matrix = compute_links(neighbors)
        assert matrix.link(0, 1) == 3
        assert matrix.link(0, 2) == 3
        assert matrix.link(1, 2) == 3

    def test_isolated_points_have_no_links(self):
        neighbors = [[0], [1], [2]]
        matrix = compute_links(neighbors)
        assert len(matrix) == 0

    def test_clique_links_equal_clique_size(self):
        neighbors = [[0, 1, 2, 3]] * 4
        matrix = compute_links(neighbors)
        assert matrix.link(0, 1) == 4

    def test_matches_definition(self):
        """link(a, b) must equal |N(a) ∩ N(b)| exactly."""
        import itertools

        neighbors = [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]]
        matrix = compute_links(neighbors)
        neighbor_sets = [set(n) for n in neighbors]
        for a, b in itertools.combinations(range(4), 2):
            expected = len(neighbor_sets[a] & neighbor_sets[b])
            assert matrix.link(a, b) == expected, (a, b)
