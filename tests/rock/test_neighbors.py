"""Unit tests for ROCK point representation and neighbours."""

import pytest

from repro.rock.neighbors import (
    itemize_table,
    neighbor_lists,
    rock_similarity,
    tuple_items,
)
from repro.simmining.supertuple import NumericBinner


class TestTupleItems:
    def test_categorical_items(self, toy_schema):
        items = tuple_items(("Ford", "Focus", 7000, 2001), toy_schema)
        assert "Make=Ford" in items and "Model=Focus" in items

    def test_numeric_skipped_without_binner(self, toy_schema):
        items = tuple_items(("Ford", "Focus", 7000, 2001), toy_schema)
        assert not any(item.startswith("Price=") for item in items)

    def test_numeric_binned_with_binner(self, toy_schema):
        binners = {"Price": NumericBinner("Price", 0, 10000, 2)}
        items = tuple_items(("Ford", "Focus", 7000, 2001), toy_schema, binners)
        assert "Price=5000-10000" in items

    def test_nulls_skipped(self, toy_schema):
        items = tuple_items(("Ford", None, None, None), toy_schema)
        assert items == frozenset({"Make=Ford"})


class TestItemizeTable:
    def test_items_per_row(self, toy_table):
        items, binners = itemize_table(toy_table, numeric_bins=4)
        assert len(items) == len(toy_table)
        assert set(binners) == {"Price", "Year"}
        # Every row has all four attributes non-null.
        assert all(len(itemset) == 4 for itemset in items)


class TestRockSimilarity:
    def test_jaccard_semantics(self):
        a = frozenset({"x", "y"})
        b = frozenset({"y", "z"})
        assert rock_similarity(a, b) == pytest.approx(1 / 3)


class TestNeighborLists:
    def test_self_is_neighbor(self):
        items = [frozenset({"a"}), frozenset({"b"})]
        neighbors = neighbor_lists(items, theta=0.5)
        assert 0 in neighbors[0] and 1 in neighbors[1]

    def test_threshold(self):
        items = [
            frozenset({"a", "b"}),
            frozenset({"a", "b"}),
            frozenset({"z", "w"}),
        ]
        neighbors = neighbor_lists(items, theta=0.9)
        assert set(neighbors[0]) == {0, 1}
        assert set(neighbors[2]) == {2}

    def test_symmetry(self):
        items = [frozenset({"a", "b"}), frozenset({"a", "c"}), frozenset({"a"})]
        neighbors = neighbor_lists(items, theta=0.3)
        for i, lst in enumerate(neighbors):
            for j in lst:
                assert i in neighbors[j]

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            neighbor_lists([], theta=1.5)
