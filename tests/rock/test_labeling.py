"""Unit tests for ROCK's data-labelling phase."""

from repro.rock.clustering import RockConfig, cluster_rock
from repro.rock.labeling import label_points


def make_clustering():
    sample = [
        frozenset({"Make=Ford", "Color=Red"}),
        frozenset({"Make=Ford", "Color=Blue"}),
        frozenset({"Make=BMW", "Color=Black"}),
        frozenset({"Make=BMW", "Color=Silver"}),
    ]
    clustering = cluster_rock(sample, RockConfig(theta=0.3, n_clusters=2))
    return clustering, sample


class TestLabelPoints:
    def test_sample_points_label_to_own_cluster(self):
        clustering, sample = make_clustering()
        labels = label_points(clustering, sample, sample)
        for point, label in enumerate(labels):
            assert label == clustering.cluster_of[point]

    def test_new_points_route_to_similar_cluster(self):
        clustering, sample = make_clustering()
        new_points = [
            frozenset({"Make=Ford", "Color=Green"}),
            frozenset({"Make=BMW", "Color=Red"}),
        ]
        labels = label_points(clustering, sample, new_points)
        ford_cluster = clustering.cluster_of[0]
        bmw_cluster = clustering.cluster_of[2]
        assert labels[0] == ford_cluster
        assert labels[1] == bmw_cluster

    def test_outlier_gets_minus_one(self):
        clustering, sample = make_clustering()
        labels = label_points(
            clustering, sample, [frozenset({"Make=Lada", "Color=Beige"})]
        )
        assert labels == [-1]

    def test_timings(self):
        from repro.rock.clustering import RockTimings

        clustering, sample = make_clustering()
        timings = RockTimings()
        label_points(clustering, sample, sample, timings=timings)
        assert timings.labeling_seconds > 0
