"""Unit tests for the ROCK-based query answering system."""

import pytest

from repro.rock.answering import RockQueryAnswerer
from repro.rock.clustering import RockConfig


@pytest.fixture(scope="module")
def fitted(car_table):
    answerer = RockQueryAnswerer(
        car_table,
        config=RockConfig(theta=0.5, n_clusters=10),
        sample_size=150,
        seed=0,
    )
    return answerer.fit()


class TestFitting:
    def test_requires_fit(self, car_table):
        answerer = RockQueryAnswerer(car_table, sample_size=50)
        with pytest.raises(RuntimeError):
            answerer.answer_row_id(0)

    def test_labels_cover_table(self, fitted, car_table):
        assert len(fitted.labels) == len(car_table)

    def test_clustering_available(self, fitted):
        assert fitted.clustering.n_clusters >= 1

    def test_rank_mode_validation(self, car_table):
        with pytest.raises(ValueError):
            RockQueryAnswerer(car_table, rank_mode="magic")


class TestAnswering:
    def test_answer_row_id_excludes_self(self, fitted):
        answers = fitted.answer_row_id(5, k=10)
        assert 5 not in [a.row_id for a in answers]

    def test_k_respected(self, fitted):
        assert len(fitted.answer_row_id(5, k=3)) <= 3

    def test_answers_share_items_with_query(self, fitted, car_table):
        answers = fitted.answer_row_id(5, k=5)
        assert all(a.similarity > 0 for a in answers)

    def test_answer_example(self, fitted, car_table):
        answers = fitted.answer_example(car_table.row(7), k=5)
        assert len(answers) >= 1

    def test_answer_bindings(self, fitted):
        answers = fitted.answer_bindings({"Make": "Ford", "Color": "White"}, k=5)
        assert len(answers) >= 1

    def test_cluster_mode_scores_binary(self, fitted):
        answers = fitted.answer_row_id(5, k=10)
        assert all(a.similarity in (0.0, 1.0) for a in answers)

    def test_jaccard_mode_scores_graded(self, car_table):
        answerer = RockQueryAnswerer(
            car_table,
            config=RockConfig(theta=0.5, n_clusters=10),
            sample_size=150,
            seed=0,
            rank_mode="jaccard",
        ).fit()
        answers = answerer.answer_row_id(5, k=10)
        assert any(0.0 < a.similarity < 1.0 for a in answers)

    def test_deterministic(self, car_table):
        def run():
            return [
                a.row_id
                for a in RockQueryAnswerer(
                    car_table,
                    config=RockConfig(theta=0.5, n_clusters=10),
                    sample_size=150,
                    seed=0,
                )
                .fit()
                .answer_row_id(5, k=10)
            ]

        assert run() == run()

    def test_timings_recorded(self, fitted):
        assert fitted.timings.link_seconds > 0
        assert fitted.timings.labeling_seconds > 0
