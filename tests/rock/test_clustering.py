"""Unit tests for ROCK agglomerative clustering."""

import pytest

from repro.rock.clustering import RockConfig, RockTimings, cluster_rock


def two_group_items() -> list[frozenset]:
    """Two obvious groups sharing no items across groups."""
    group_a = [
        frozenset({"Make=Ford", "Color=Red", "Year=2000"}),
        frozenset({"Make=Ford", "Color=Red", "Year=2001"}),
        frozenset({"Make=Ford", "Color=Blue", "Year=2000"}),
    ]
    group_b = [
        frozenset({"Make=BMW", "Color=Black", "Year=2005"}),
        frozenset({"Make=BMW", "Color=Black", "Year=2004"}),
        frozenset({"Make=BMW", "Color=Silver", "Year=2005"}),
    ]
    return group_a + group_b


class TestRockConfig:
    def test_f_theta(self):
        config = RockConfig(theta=0.5)
        assert config.f_theta == pytest.approx(1 / 3)
        assert config.exponent == pytest.approx(1 + 2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RockConfig(theta=1.0)
        with pytest.raises(ValueError):
            RockConfig(n_clusters=0)
        with pytest.raises(ValueError):
            RockConfig(numeric_bins=0)


class TestClusterRock:
    def test_separates_obvious_groups(self):
        items = two_group_items()
        clustering = cluster_rock(items, RockConfig(theta=0.3, n_clusters=2))
        assert clustering.n_clusters == 2
        for members in clustering.clusters:
            makes = {
                next(i for i in items[m] if i.startswith("Make=")) for m in members
            }
            assert len(makes) == 1, "clusters must not mix groups"

    def test_every_point_assigned_once(self):
        items = two_group_items()
        clustering = cluster_rock(items, RockConfig(theta=0.3, n_clusters=2))
        assigned = sorted(p for members in clustering.clusters for p in members)
        assert assigned == list(range(len(items)))

    def test_cluster_of_mapping(self):
        items = two_group_items()
        clustering = cluster_rock(items, RockConfig(theta=0.3, n_clusters=2))
        for cluster_id, members in enumerate(clustering.clusters):
            for point in members:
                assert clustering.cluster_of[point] == cluster_id

    def test_stops_when_no_links(self):
        # Disjoint singleton items can never merge.
        items = [frozenset({f"v={i}"}) for i in range(5)]
        clustering = cluster_rock(items, RockConfig(theta=0.5, n_clusters=1))
        assert clustering.n_clusters == 5

    def test_empty_input(self):
        clustering = cluster_rock([], RockConfig())
        assert clustering.clusters == []

    def test_single_point(self):
        clustering = cluster_rock([frozenset({"a"})], RockConfig())
        assert clustering.clusters == [[0]]

    def test_timings_populated(self):
        timings = RockTimings()
        cluster_rock(two_group_items(), RockConfig(theta=0.3, n_clusters=2), timings)
        assert timings.link_seconds > 0
        assert timings.clustering_seconds >= 0
        assert timings.total_seconds >= timings.link_seconds

    def test_deterministic(self):
        items = two_group_items()
        a = cluster_rock(items, RockConfig(theta=0.3, n_clusters=2))
        b = cluster_rock(items, RockConfig(theta=0.3, n_clusters=2))
        assert a.clusters == b.clusters

    def test_members_copy(self):
        clustering = cluster_rock(
            two_group_items(), RockConfig(theta=0.3, n_clusters=2)
        )
        members = clustering.members(0)
        members.append(999)
        assert 999 not in clustering.clusters[0]
