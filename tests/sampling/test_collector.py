"""Unit tests for the probing data collector."""

import random

import pytest

from repro.db.webdb import AutonomousWebDatabase
from repro.sampling.collector import collect_sample, nested_samples, probe_all


class TestProbeAll:
    def test_collects_every_tuple(self, toy_webdb, toy_table):
        local, report = probe_all(toy_webdb)
        assert len(local) == len(toy_table)
        assert report.complete
        assert report.tuples_collected == len(toy_table)

    def test_uses_named_attribute(self, toy_webdb):
        local, report = probe_all(toy_webdb, spanning_attribute="Make")
        assert report.spanning_attribute == "Make"
        assert report.probes_issued == 3

    def test_result_cap_without_pagination_undercovers(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=1)
        local, report = probe_all(
            capped, spanning_attribute="Make", paginate=False
        )
        assert len(local) == 3  # one page per make
        assert not report.complete
        assert report.notes

    def test_pagination_recovers_capped_source(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        local, report = probe_all(capped, spanning_attribute="Make")
        assert len(local) == len(toy_table)
        assert report.complete
        assert report.pages_followed > 0

    def test_max_pages_limit(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=1)
        local, report = probe_all(
            capped, spanning_attribute="Make", max_pages_per_probe=2
        )
        # Toyota and Honda have 3 rows each: 2 pages deliver only 2.
        assert len(local) < len(toy_table)
        assert not report.complete


class TestCollectSample:
    def test_sample_size_respected(self, toy_webdb, rng):
        sample, report = collect_sample(toy_webdb, 4, rng)
        assert len(sample) == 4
        assert report.tuples_collected == 4

    def test_oversized_request_returns_all(self, toy_webdb, toy_table, rng):
        sample, _ = collect_sample(toy_webdb, 100, rng)
        assert len(sample) == len(toy_table)

    def test_invalid_size(self, toy_webdb, rng):
        with pytest.raises(ValueError):
            collect_sample(toy_webdb, 0, rng)

    def test_sample_rows_come_from_source(self, toy_webdb, toy_table, rng):
        sample, _ = collect_sample(toy_webdb, 5, rng)
        source_rows = set(toy_table.rows())
        assert all(row in source_rows for row in sample)

    def test_deterministic_with_seeded_rng(self, toy_webdb):
        a, _ = collect_sample(toy_webdb, 4, random.Random(5))
        toy_webdb.reset_accounting()
        b, _ = collect_sample(toy_webdb, 4, random.Random(5))
        assert a.rows() == b.rows()


class TestNestedSamples:
    def test_nesting_property(self, toy_table, rng):
        samples = nested_samples(toy_table, [2, 4, 8], rng)
        small = set(samples[2].rows())
        medium = set(samples[4].rows())
        large = set(samples[8].rows())
        assert small <= medium <= large

    def test_sizes(self, toy_table, rng):
        samples = nested_samples(toy_table, [3, 5], rng)
        assert len(samples[3]) == 3 and len(samples[5]) == 5

    def test_oversized_clamped(self, toy_table, rng):
        samples = nested_samples(toy_table, [100], rng)
        assert len(samples[100]) == len(toy_table)

    def test_empty_request(self, toy_table, rng):
        assert nested_samples(toy_table, [], rng) == {}

    def test_invalid_sizes(self, toy_table, rng):
        with pytest.raises(ValueError):
            nested_samples(toy_table, [0], rng)

    def test_duplicates_collapse(self, toy_table, rng):
        samples = nested_samples(toy_table, [2, 2, 4], rng)
        assert set(samples) == {2, 4}
