"""Unit tests for spanning-query generation."""

import pytest

from repro.db.predicates import Between
from repro.sampling.spanning import (
    categorical_spanning_queries,
    choose_spanning_attribute,
    numeric_spanning_queries,
)


class TestCategoricalSpanning:
    def test_one_query_per_option(self, toy_webdb):
        queries = list(categorical_spanning_queries(toy_webdb, "Make"))
        assert len(queries) == 3
        values = {q.predicates[0].value for q in queries}
        assert values == {"Ford", "Honda", "Toyota"}

    def test_queries_jointly_cover_relation(self, toy_webdb, toy_table):
        covered = set()
        for query in categorical_spanning_queries(toy_webdb, "Make"):
            covered.update(toy_webdb.query(query).row_ids)
        assert covered == set(range(len(toy_table)))

    def test_queries_are_disjoint(self, toy_webdb):
        seen = set()
        for query in categorical_spanning_queries(toy_webdb, "Model"):
            ids = set(toy_webdb.query(query).row_ids)
            assert not (seen & ids)
            seen |= ids


class TestNumericSpanning:
    def test_ranges_cover_and_do_not_overlap(self):
        queries = list(numeric_spanning_queries("Price", 0, 100, 4))
        assert len(queries) == 4
        predicates = [q.predicates[0] for q in queries]
        assert all(isinstance(p, Between) for p in predicates)
        assert predicates[0].low == 0
        assert predicates[-1].high == 100
        for left, right in zip(predicates, predicates[1:]):
            assert left.high < right.low

    def test_single_range(self):
        queries = list(numeric_spanning_queries("Price", 5, 10, 1))
        assert len(queries) == 1
        assert queries[0].predicates[0].low == 5

    def test_degenerate_extent(self):
        queries = list(numeric_spanning_queries("Price", 5, 5, 3))
        assert any(q.predicates[0].matches(5) for q in queries)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(numeric_spanning_queries("Price", 0, 10, 0))
        with pytest.raises(ValueError):
            list(numeric_spanning_queries("Price", 10, 0, 2))


class TestChooseSpanningAttribute:
    def test_picks_largest_fanout(self, toy_webdb):
        # Model has 6 distinct values vs Make's 3.
        assert choose_spanning_attribute(toy_webdb) == "Model"

    def test_no_categorical_attribute(self):
        from repro.db.schema import RelationSchema
        from repro.db.table import Table
        from repro.db.webdb import AutonomousWebDatabase

        schema = RelationSchema.build("Nums", numeric=("X",))
        webdb = AutonomousWebDatabase(Table(schema))
        with pytest.raises(ValueError):
            choose_spanning_attribute(webdb)
