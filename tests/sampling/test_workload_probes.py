"""Unit tests for workload-driven probing."""

import pytest

from repro.core.query import ImpreciseQuery
from repro.db.webdb import AutonomousWebDatabase
from repro.sampling.workload_probes import probe_from_workload


def q(**bindings):
    return ImpreciseQuery.like("Cars", **bindings)


class TestProbeFromWorkload:
    def test_collects_matching_tuples(self, toy_webdb):
        sample, report = probe_from_workload(toy_webdb, [q(Make="Toyota")])
        assert len(sample) == 3
        assert all(row[0] == "Toyota" for row in sample)
        assert report.queries_probed == 1
        assert report.tuples_collected == 3

    def test_numeric_bindings_widened(self, toy_webdb):
        # No car costs exactly 10100; the ±25% band catches several.
        sample, report = probe_from_workload(toy_webdb, [q(Price=10100)])
        assert len(sample) >= 2
        assert report.empty_probes == 0

    def test_deduplicates_across_queries(self, toy_webdb):
        sample, report = probe_from_workload(
            toy_webdb, [q(Make="Toyota"), q(Make="Toyota")]
        )
        assert len(sample) == 3
        assert report.duplicate_hits == 3

    def test_max_tuples_cap(self, toy_webdb):
        sample, report = probe_from_workload(
            toy_webdb, [q(Make="Toyota"), q(Make="Honda")], max_tuples=4
        )
        assert len(sample) == 4
        assert any("cap" in note for note in report.notes)

    def test_empty_workload(self, toy_webdb):
        sample, report = probe_from_workload(toy_webdb, [])
        assert len(sample) == 0
        assert report.notes

    def test_unmatchable_query_counts_empty_probe(self, toy_webdb):
        sample, report = probe_from_workload(toy_webdb, [q(Make="Lada")])
        assert len(sample) == 0
        assert report.empty_probes == 1

    def test_pagination_through_result_caps(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=1)
        sample, report = probe_from_workload(capped, [q(Make="Toyota")])
        assert len(sample) == 3
        assert report.probes_issued > 1

    def test_invalid_band(self, toy_webdb):
        with pytest.raises(ValueError):
            probe_from_workload(toy_webdb, [q(Make="Toyota")], numeric_band=0)

    def test_query_validated(self, toy_webdb):
        with pytest.raises(Exception):
            probe_from_workload(toy_webdb, [q(Nope="x")])

    def test_bias_toward_workload_region(self, car_webdb):
        """The sample over-represents the asked-about makes."""
        queries = [ImpreciseQuery.like("CarDB", Make="Ford")]
        sample, _ = probe_from_workload(car_webdb, queries)
        assert len(sample) > 0
        assert all(row[0] == "Ford" for row in sample)
