"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_binding, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "cardb", "--rows", "50", "--out", "x.csv"]
        )
        assert args.dataset == "cardb" and args.rows == 50

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nope", "--out", "x.csv"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestParseBinding:
    def test_string_value(self):
        assert _parse_binding("Model=Camry") == ("Model", "Camry")

    def test_int_value(self):
        assert _parse_binding("Price=10000") == ("Price", 10000)

    def test_float_value(self):
        assert _parse_binding("Price=99.5") == ("Price", 99.5)

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_binding("Model")


class TestCommands:
    def test_generate_cardb(self, tmp_path, capsys):
        out = tmp_path / "cars.csv"
        code = main(
            ["generate", "cardb", "--rows", "40", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote 40 rows" in capsys.readouterr().out

    def test_generate_censusdb_with_labels(self, tmp_path, capsys):
        out = tmp_path / "census.csv"
        labels = tmp_path / "labels.txt"
        code = main(
            [
                "generate",
                "censusdb",
                "--rows",
                "30",
                "--out",
                str(out),
                "--labels-out",
                str(labels),
            ]
        )
        assert code == 0
        assert len(labels.read_text().splitlines()) == 30

    def test_mine_prints_ordering(self, capsys):
        code = main(
            ["mine", "cardb", "--rows", "1200", "--sample", "500"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Attribute ordering" in output
        assert "DependencyModel" in output

    def test_mine_save_and_query_from_model(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert (
            main(
                [
                    "mine",
                    "cardb",
                    "--rows",
                    "1500",
                    "--sample",
                    "600",
                    "--save",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists()
        capsys.readouterr()
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "1500",
                "--model",
                str(model_path),
                "-k",
                "3",
                "Model=Camry",
                "Price=9000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Camry" in output and "sim=" in output

    def test_query_without_model(self, capsys):
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "1500",
                "--sample",
                "600",
                "-k",
                "3",
                "Make=Honda",
            ]
        )
        assert code == 0
        assert "Answers for" in capsys.readouterr().out

    def test_query_unknown_attribute_fails_cleanly(self, capsys):
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "1200",
                "--sample",
                "500",
                "Nope=1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_text_form(self, capsys):
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "1500",
                "--sample",
                "600",
                "-k",
                "3",
                "--text",
                "Model like Camry AND Price < 12000",
            ]
        )
        assert code == 0
        assert "Camry" in capsys.readouterr().out

    def test_query_text_and_pairs_conflict(self, capsys):
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "1200",
                "--sample",
                "500",
                "--text",
                "Model like Camry",
                "Price=9000",
            ]
        )
        assert code == 2

    def test_query_without_any_constraint(self, capsys):
        code = main(["query", "cardb", "--rows", "1200", "--sample", "500"])
        assert code == 2

    def test_experiment_table1(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        assert "Make=Ford" in capsys.readouterr().out


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def _isolate_obs(self):
        from repro.obs import OBS

        OBS.reset()
        yield
        OBS.disable()
        OBS.reset()

    def test_stats_emits_both_formats(self, capsys):
        code = main(
            ["stats", "cardb", "--rows", "300", "--sample", "120", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"metrics"' in out  # JSON section
        assert "# TYPE" in out  # Prometheus section
        for prefix in (
            "repro_db_",
            "repro_afd_",
            "repro_simmining_",
            "repro_core_",
        ):
            assert prefix in out

    def test_stats_writes_json_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "snapshot.json"
        code = main(
            [
                "stats",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "120",
                "--format",
                "json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        assert snapshot["metrics"]

    def test_trace_flag_prints_span_tree(self, capsys):
        code = main(
            [
                "--trace",
                "query",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "120",
                "-k",
                "3",
                "Make=Ford",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline.build_model" in out
        assert "engine.answer" in out
        assert "engine.base_query_mapping" in out

    def test_metrics_out_flag_writes_prometheus(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(
            [
                "--metrics-out",
                str(out),
                "--metrics-format",
                "prom",
                "mine",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "120",
            ]
        )
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert "# TYPE repro_db_probe_seconds histogram" in text
        assert "repro_afd_partitions_computed_total" in text

    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats", "cardb"])
        assert args.format == "both" and args.k == 10
        assert args.trace is False and args.metrics_out is None


class TestBenchCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == "default" and args.only is None
        assert args.check is False and args.max_regression == 0.25

    def test_bench_only_topk_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--scale", "smoke", "--only", "topk", "--out", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["scale"] == "smoke"
        assert set(report["scenarios"]) == {"topk"}
        assert report["scenarios"]["topk"]["equivalent"] is True
        assert "topk:" in capsys.readouterr().out

    def test_bench_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--only", "nonsense"])


class TestWideEventsCli:
    """The PR 6 acceptance path: query --trace --events-out --chrome-out."""

    @pytest.fixture(autouse=True)
    def _isolate_obs(self):
        from repro.obs import OBS

        OBS.reset()
        yield
        OBS.disable()
        OBS.events.enabled = False
        OBS.events.probe_events = False
        OBS.reset()

    def test_acceptance_invocation_yields_one_consistent_event(
        self, tmp_path, capsys
    ):
        import json

        events = tmp_path / "e.jsonl"
        chrome = tmp_path / "t.json"
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "--batched",
                "--batch-workers",
                "4",
                "--resilient",
                "--trace",
                "--events-out",
                str(events),
                "--chrome-out",
                str(chrome),
                "Make=Ford",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"events written to {events}" in out
        assert f"trace events written to {chrome}" in out
        records = [
            json.loads(line)
            for line in events.read_text(encoding="utf-8").splitlines()
            if line
        ]
        answers = [r for r in records if r["event"] == "engine.answer"]
        assert len(answers) == 1
        (event,) = answers
        assert event["dataset"] == "CarDB"
        assert event["batch_workers"] == 4
        assert event["frontier"] == "tuple"
        assert event["resilient"] is True
        assert event["logical_probes"] == (
            event["probes_issued"]
            + event["probes_cached"]
            + event["probes_subsumed"]
        )
        assert event["trace_id"].startswith("t-")
        trace = json.loads(chrome.read_text(encoding="utf-8"))
        names = [e["name"] for e in trace["traceEvents"]]
        assert "engine.answer" in names
        # Every probe/retry span belongs to the answering trace.
        answer_args = next(
            e["args"]
            for e in trace["traceEvents"]
            if e["name"] == "engine.answer"
        )
        assert answer_args["trace_id"] == event["trace_id"]

    def test_obs_flags_accepted_before_the_subcommand(self, tmp_path, capsys):
        events = tmp_path / "e.jsonl"
        code = main(
            [
                "--events-out",
                str(events),
                "query",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "Make=Ford",
            ]
        )
        assert code == 0
        assert events.exists()
        assert "events written to" in capsys.readouterr().out

    def test_events_probe_flag_adds_probe_events(self, tmp_path, capsys):
        import json

        events = tmp_path / "e.jsonl"
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "--events-out",
                str(events),
                "--events-probe",
                "Make=Ford",
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in events.read_text(encoding="utf-8").splitlines()
            if line
        ]
        kinds = {r["event"] for r in records}
        assert "db.probe" in kinds and "engine.answer" in kinds

    def test_main_restores_event_flags(self, tmp_path):
        from repro.obs import OBS

        events = tmp_path / "e.jsonl"
        assert OBS.events.enabled is False
        code = main(
            [
                "query",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "--events-out",
                str(events),
                "--events-probe",
                "Make=Ford",
            ]
        )
        assert code == 0
        assert OBS.events.enabled is False
        assert OBS.events.probe_events is False


class TestTraceCommand:
    @pytest.fixture(autouse=True)
    def _isolate_obs(self):
        from repro.obs import OBS

        OBS.reset()
        yield
        OBS.disable()
        OBS.events.enabled = False
        OBS.events.probe_events = False
        OBS.reset()

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.dataset == "cardb" and args.k == 5
        assert args.tree is False and args.from_events is None

    def test_prints_summary_table_and_answer_event(self, capsys):
        code = main(
            [
                "trace",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "--batched",
                "--batch-workers",
                "2",
                "Make=Ford",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.answer" in out
        assert "total_s" in out  # summary table header
        assert '"event": "engine.answer"' in out

    def test_tree_flag_prints_the_span_tree(self, capsys):
        code = main(
            [
                "trace",
                "cardb",
                "--rows",
                "300",
                "--sample",
                "100",
                "--tree",
                "Make=Ford",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.answer" in out
        assert "engine.base_query_mapping" in out

    def test_from_events_summarises_an_existing_log(self, tmp_path, capsys):
        import json

        path = tmp_path / "e.jsonl"
        lines = [
            {"event": "db.probe", "rows": 3},
            {"event": "db.probe", "rows": 0},
            {"event": "engine.answer", "answers": 5, "probes_issued": 2},
        ]
        path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n",
            encoding="utf-8",
        )
        code = main(["trace", "--from-events", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2  db.probe" in out
        assert "1  engine.answer" in out
        assert '"probes_issued": 2' in out


class TestStatsFamilies:
    @pytest.fixture(autouse=True)
    def _isolate_obs(self):
        from repro.obs import OBS

        OBS.reset()
        yield
        OBS.disable()
        OBS.reset()

    def test_stats_includes_resilience_and_planner_families(self, capsys):
        code = main(
            ["stats", "cardb", "--rows", "300", "--sample", "120", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for family in (
            "repro_resilience_attempts_total",
            "repro_resilience_retries_total",
            "repro_resilience_retry_exhaustions_total",
            "repro_resilience_deadline_refusals_total",
            "repro_resilience_backoff_seconds",
            "repro_resilience_breaker_rejections_total",
            "repro_resilience_breaker_transitions_total",
            "repro_resilience_skipped_steps_total",
            "repro_core_probes_subsumed_total",
            "repro_core_frontier_batches_total",
        ):
            assert family in out
        assert "# EOF" in out
