"""Property-based tests (hypothesis) on the core data structures.

Invariants checked:

* stripped partitions: product refines factors, rank monotonicity,
  measure consistency;
* g3: bounds, monotonicity under determinant growth, exactness
  equivalences;
* bags: Jaccard is a proper similarity (bounds, symmetry, identity),
  intersection/union size algebra;
* metrics: bounds and degenerate cases;
* similarity: numeric similarity bounds and symmetry-in-distance;
* relaxation: generated subsets are exactly the expected combinations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afd.g3 import dependency_error, key_error
from repro.afd.partition import partition_product, partition_single
from repro.core.similarity import numeric_similarity
from repro.evalx.metrics import paper_mrr, rank_agreement
from repro.simmining.bag import Bag, jaccard_sets

# -- strategies -------------------------------------------------------------

small_alphabet = st.sampled_from("abcd")
columns = st.lists(small_alphabet, min_size=0, max_size=40)


def paired_columns(min_size=0, max_size=40):
    """Two columns over the same row ids."""
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(small_alphabet, min_size=n, max_size=n),
            st.lists(small_alphabet, min_size=n, max_size=n),
        )
    )


bags = st.lists(small_alphabet, min_size=0, max_size=30).map(Bag)


# -- partitions ---------------------------------------------------------------


@given(columns)
def test_partition_classes_disjoint_and_stripped(column):
    partition = partition_single(column)
    seen: set[int] = set()
    for members in partition.classes:
        assert len(members) >= 2
        for row_id in members:
            assert row_id not in seen
            seen.add(row_id)
    assert partition.stripped_size == len(seen)


@given(columns)
def test_partition_num_classes_bounds(column):
    partition = partition_single(column)
    if column:
        assert 1 <= partition.num_classes <= len(column)
    else:
        assert partition.num_classes == 0


@given(paired_columns())
def test_product_refines_factors(data):
    left_col, right_col = data
    left = partition_single(left_col)
    right = partition_single(right_col)
    product = partition_product(left, right)
    assert product.refines(left)
    assert product.refines(right)


@given(paired_columns())
def test_product_rank_does_not_exceed_factors(data):
    left_col, right_col = data
    left = partition_single(left_col)
    right = partition_single(right_col)
    product = partition_product(left, right)
    assert product.rank <= left.rank
    assert product.rank <= right.rank


@given(columns)
def test_product_with_self_is_identity(column):
    partition = partition_single(column)
    product = partition_product(partition, partition)
    assert {frozenset(c) for c in product.classes} == {
        frozenset(c) for c in partition.classes
    }


# -- g3 -------------------------------------------------------------------


@given(paired_columns(min_size=1))
def test_g3_dependency_error_bounds(data):
    lhs_col, rhs_col = data
    lhs = partition_single(lhs_col)
    combined = partition_product(lhs, partition_single(rhs_col))
    error = dependency_error(lhs, combined)
    assert 0.0 <= error < 1.0


@given(paired_columns(min_size=1))
def test_g3_exact_iff_equal_rank(data):
    """X → A holds exactly iff π_X and π_{X∪A} have equal rank."""
    lhs_col, rhs_col = data
    lhs = partition_single(lhs_col)
    combined = partition_product(lhs, partition_single(rhs_col))
    error = dependency_error(lhs, combined)
    assert (error == 0.0) == (lhs.rank == combined.rank)


@given(st.integers(min_value=1, max_value=30).flatmap(
    lambda n: st.tuples(
        st.lists(small_alphabet, min_size=n, max_size=n),
        st.lists(small_alphabet, min_size=n, max_size=n),
        st.lists(small_alphabet, min_size=n, max_size=n),
    )
))
def test_g3_monotone_in_determinant(data):
    """Adding attributes to the determinant never increases the error."""
    a_col, b_col, target_col = data
    a = partition_single(a_col)
    target = partition_single(target_col)
    ab = partition_product(a, partition_single(b_col))
    error_a = dependency_error(a, partition_product(a, target))
    error_ab = dependency_error(ab, partition_product(ab, target))
    assert error_ab <= error_a + 1e-12


@given(columns.filter(bool))
def test_g3_key_error_bounds(column):
    error = key_error(partition_single(column))
    assert 0.0 <= error < 1.0


@given(paired_columns(min_size=1))
def test_g3_key_error_monotone_under_refinement(data):
    left_col, right_col = data
    left = partition_single(left_col)
    product = partition_product(left, partition_single(right_col))
    assert key_error(product) <= key_error(left) + 1e-12


# -- bags ------------------------------------------------------------------


@given(bags, bags)
def test_bag_jaccard_bounds_and_symmetry(a, b):
    similarity = a.jaccard(b)
    assert 0.0 <= similarity <= 1.0
    assert similarity == b.jaccard(a)


@given(bags)
def test_bag_jaccard_identity(a):
    assert a.jaccard(a) == 1.0


@given(bags, bags)
def test_bag_intersection_union_algebra(a, b):
    intersection = a.intersection_size(b)
    union = a.union_size(b)
    assert intersection + union == len(a) + len(b)
    assert intersection <= min(len(a), len(b))
    assert union >= max(len(a), len(b))


@given(bags, bags)
def test_bag_jaccard_le_set_jaccard_when_multiplicity_unequal(a, b):
    """Collapsing to sets can only merge mass, never split it: the set
    Jaccard of the supports is >= 0 whenever bag Jaccard is > 0."""
    if a.jaccard(b) > 0:
        assert jaccard_sets(a.as_set(), b.as_set()) > 0


# -- metrics ----------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10))
def test_paper_mrr_bounds(user_ranks):
    assert 0.0 < paper_mrr(user_ranks) <= 1.0


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=50))
def test_rank_agreement_bounds(user_rank, system_rank):
    agreement = rank_agreement(user_rank, system_rank)
    assert 0.0 < agreement <= 1.0
    assert (agreement == 1.0) == (user_rank == system_rank)


@given(st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=10))
def test_paper_mrr_perfect_for_identity(ranks):
    identity = list(range(1, len(ranks) + 1))
    assert paper_mrr(identity) == 1.0


# -- numeric similarity -----------------------------------------------------


@given(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_numeric_similarity_bounds(reference, candidate):
    similarity = numeric_similarity(reference, candidate)
    assert 0.0 <= similarity <= 1.0


@given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
def test_numeric_similarity_identity(value):
    assert numeric_similarity(value, value) == 1.0


@given(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
def test_numeric_similarity_symmetric_around_reference(reference, fraction):
    delta = reference * fraction
    up = numeric_similarity(reference, reference + delta)
    down = numeric_similarity(reference, reference - delta)
    assert abs(up - down) < 1e-9


# -- CSV round trip ------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["Ford", "Kia", "BMW"]),
            st.one_of(st.none(), st.sampled_from(["Rio", "M3", "F-150"])),
            st.one_of(
                st.none(),
                st.integers(min_value=0, max_value=10**6),
                st.floats(
                    min_value=0, max_value=1e6, allow_nan=False, width=32
                ),
            ),
            st.integers(min_value=1980, max_value=2010),
        ),
        min_size=0,
        max_size=25,
    )
)
@settings(max_examples=40)
def test_csv_round_trip_preserves_rows(tmp_path_factory, rows):
    from repro.db.csvio import read_csv, write_csv
    from repro.db.schema import RelationSchema
    from repro.db.table import Table

    schema = RelationSchema.build(
        "Cars",
        categorical=("Make", "Model"),
        numeric=("Price", "Year"),
        order=("Make", "Model", "Price", "Year"),
    )
    table = Table(schema)
    table.extend(rows)
    path = tmp_path_factory.mktemp("csv") / "table.csv"
    write_csv(table, path)
    loaded = read_csv(schema, path)
    assert len(loaded) == len(table)
    for original, reloaded in zip(table, loaded):
        for a, b in zip(original, reloaded):
            if isinstance(a, float):
                assert b == __import__("pytest").approx(a, rel=1e-6)
            else:
                assert a == b


# -- relaxation subset generation --------------------------------------------


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=5))
@settings(max_examples=30)
def test_ordered_subsets_are_exactly_combinations(n_attrs, level):
    from itertools import combinations

    from repro.core.relaxation import ordered_subsets

    order = [f"a{i}" for i in range(n_attrs)]
    produced = list(ordered_subsets(order, level))
    assert produced == list(combinations(order, level))
