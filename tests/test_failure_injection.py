"""Failure injection: budget exhaustion, capped sources, hostile inputs.

A production system meets rate limits, truncated pages and malformed
inputs; these tests pin how the stack degrades.
"""

import random

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model, build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.datasets.cardb import generate_cardb
from repro.db.errors import ProbeLimitExceededError, QueryError
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.sampling.collector import collect_sample, probe_all


class TestProbeBudgetExhaustion:
    def test_collector_surfaces_budget_error(self, car_table):
        limited = AutonomousWebDatabase(car_table, probe_budget=3)
        with pytest.raises(ProbeLimitExceededError):
            probe_all(limited, spanning_attribute="Model")

    def test_engine_degrades_on_budget_exhaustion_mid_answer(self, car_table):
        """Budget death mid-relaxation yields a degraded answer, not a crash.

        The probes already paid for are not discarded: whatever the
        engine ranked before the budget ran out is returned, with the
        exhaustion recorded in the degradation report.
        """
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(sample)
        limited = AutonomousWebDatabase(car_table, probe_budget=2)
        engine = model.engine(limited)
        answers = engine.answer(
            ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)
        )
        assert answers.degraded
        assert answers.degradation.budget_exhausted
        assert any(
            step.error_kind == "ProbeLimitExceededError"
            for step in answers.degradation.skipped
        )
        # The base set survived the budget death (mapping cost 1 probe,
        # the budget allowed 2), so the base tuples are still answers.
        assert len(answers) >= 1

    def test_engine_degraded_answer_keeps_ranked_tuples(self, car_table):
        """A mid-expansion budget death returns exactly the tuples that a
        clean run had already ranked by that point — nothing discarded."""
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(
            sample, settings=AIMQSettings(max_relaxation_level=2)
        )
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)
        unlimited = AutonomousWebDatabase(car_table, probe_budget=10_000)
        # k large enough to return the whole extended set, so the
        # subset relation below is exact, not a top-k artefact.
        full = model.engine(unlimited).answer(query, k=100_000)
        assert not full.degraded
        budget = unlimited.log.probes_issued // 2
        limited = AutonomousWebDatabase(car_table, probe_budget=budget)
        partial = model.engine(limited).answer(query, k=100_000)
        assert partial.degraded
        # Every probe the budget allowed was actually spent (the trace
        # counts relaxation probes; mapping probes use the same budget).
        assert limited.log.probes_issued == budget
        assert 1 <= len(partial) <= len(full)
        # Probe order is deterministic, so everything the partial run
        # extracted is a subset of what the clean run extracted.
        assert set(partial.row_ids) <= set(full.row_ids)

    def test_budget_large_enough_succeeds(self, car_table):
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(
            sample, settings=AIMQSettings(max_relaxation_level=2)
        )
        generous = AutonomousWebDatabase(car_table, probe_budget=10_000)
        answers = model.engine(generous).answer(
            ImpreciseQuery.like("CarDB", Model="Camry", Price=9000), k=5
        )
        assert len(answers) >= 1


class TestCappedSourceDegradation:
    def test_build_model_against_capped_source(self):
        """Pagination keeps mining possible behind small result pages."""
        table = generate_cardb(800, seed=5)
        capped = AutonomousWebDatabase(table, result_cap=25)
        model = build_model(capped, sample_size=400, rng=random.Random(1))
        assert len(model.sample) == 400
        assert model.collection_report.complete

    def test_engine_works_against_capped_source(self, car_table):
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(sample)
        capped = AutonomousWebDatabase(car_table, result_cap=5)
        answers = model.engine(capped).answer(
            ImpreciseQuery.like("CarDB", Model="Camry", Price=9000), k=5
        )
        assert len(answers) >= 1


class TestHostileInputs:
    def test_empty_relation_mining(self):
        schema = RelationSchema.build(
            "Empty", categorical=("A",), numeric=("N",)
        )
        model = build_model_from_sample(Table(schema))
        assert model.dependencies.afds == ()
        assert model.ordering.relaxation_order == ("A", "N")

    def test_single_row_relation(self):
        schema = RelationSchema.build(
            "One", categorical=("A", "B"), numeric=("N",)
        )
        table = Table(schema)
        table.insert(("x", "y", 1))
        model = build_model_from_sample(table)
        webdb = AutonomousWebDatabase(table)
        answers = model.engine(webdb).answer(
            ImpreciseQuery.like("One", A="x"), k=5
        )
        assert len(answers) == 1

    def test_all_null_column(self):
        schema = RelationSchema.build("N", categorical=("A", "B"))
        table = Table(schema)
        table.extend([("x", None), ("y", None), ("x", None)])
        model = build_model_from_sample(table)
        assert "B" in model.ordering.relaxation_order

    def test_constant_relation(self):
        schema = RelationSchema.build("C", categorical=("A", "B"))
        table = Table(schema)
        table.extend([("x", "y")] * 10)
        model = build_model_from_sample(table)
        webdb = AutonomousWebDatabase(table)
        answers = model.engine(webdb).answer(
            ImpreciseQuery.like("C", A="x"), k=3
        )
        assert len(answers) == 3

    def test_query_for_unknown_value_fails_cleanly(self, car_table):
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(sample)
        webdb = AutonomousWebDatabase(car_table)
        with pytest.raises(QueryError):
            model.engine(webdb).answer(
                ImpreciseQuery.like("CarDB", Model="Batmobile")
            )

    def test_sample_larger_than_source(self):
        table = generate_cardb(50, seed=3)
        webdb = AutonomousWebDatabase(table)
        model = build_model(webdb, sample_size=500, rng=random.Random(1))
        assert len(model.sample) == 50

    def test_collect_sample_budget_failure(self, car_table):
        limited = AutonomousWebDatabase(car_table, probe_budget=1)
        with pytest.raises(ProbeLimitExceededError):
            collect_sample(limited, 100, random.Random(0))
