"""Unit tests for stripped partitions."""

import pytest

from repro.afd.partition import (
    StrippedPartition,
    partition_product,
    partition_single,
)


class TestPartitionSingle:
    def test_groups_equal_values(self):
        p = partition_single(["a", "b", "a", "c", "b", "a"])
        classes = {frozenset(c) for c in p.classes}
        assert classes == {frozenset({0, 2, 5}), frozenset({1, 4})}

    def test_singletons_stripped(self):
        p = partition_single(["a", "b", "c"])
        assert p.classes == ()
        assert p.num_classes == 3

    def test_nulls_group_together(self):
        p = partition_single([None, "a", None])
        assert {frozenset(c) for c in p.classes} == {frozenset({0, 2})}

    def test_empty_column(self):
        p = partition_single([])
        assert p.n_rows == 0 and p.num_classes == 0


class TestMeasures:
    def test_stripped_size(self):
        p = partition_single(["a", "a", "b", "b", "c"])
        assert p.stripped_size == 4
        assert p.num_stripped_classes == 2

    def test_num_classes_counts_singletons(self):
        p = partition_single(["a", "a", "b", "c"])
        assert p.num_classes == 3

    def test_rank(self):
        p = partition_single(["a", "a", "a", "b", "b"])
        assert p.rank == (3 - 1) + (2 - 1)

    def test_class_of(self):
        p = partition_single(["a", "a", "b"])
        assert p.class_of(0) == p.class_of(1)
        assert p.class_of(2) is None


class TestProduct:
    def test_product_refines_both(self):
        left = partition_single(["x", "x", "x", "y", "y"])
        right = partition_single(["1", "1", "2", "2", "2"])
        product = partition_product(left, right)
        classes = {frozenset(c) for c in product.classes}
        assert classes == {frozenset({0, 1}), frozenset({3, 4})}
        assert product.refines(left)
        assert product.refines(right)

    def test_product_with_identity(self):
        left = partition_single(["x", "x", "y", "y"])
        constant = partition_single(["c", "c", "c", "c"])
        product = partition_product(left, constant)
        assert {frozenset(c) for c in product.classes} == {
            frozenset(c) for c in left.classes
        }

    def test_product_commutative(self):
        a = partition_single(["x", "x", "y", "y", "x"])
        b = partition_single(["1", "2", "1", "2", "2"])
        ab = partition_product(a, b)
        ba = partition_product(b, a)
        assert {frozenset(c) for c in ab.classes} == {
            frozenset(c) for c in ba.classes
        }

    def test_product_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            partition_product(partition_single(["a"]), partition_single(["a", "a"]))

    def test_key_partition_product_is_empty(self):
        unique = partition_single(["a", "b", "c", "d"])
        other = partition_single(["x", "x", "x", "x"])
        assert partition_product(unique, other).classes == ()


class TestRefines:
    def test_self_refinement(self):
        p = partition_single(["a", "a", "b", "b"])
        assert p.refines(p)

    def test_non_refinement(self):
        coarse = partition_single(["a", "a", "a", "b"])
        fine = partition_single(["1", "1", "2", "2"])
        assert not coarse.refines(fine)

    def test_explicit_construction(self):
        p = StrippedPartition(classes=((0, 1), (2, 3)), n_rows=5)
        assert p.class_of(4) is None
        assert p.stripped_size == 4


class TestLazyClassMap:
    def test_map_not_built_until_needed(self):
        p = partition_single(["a", "b", "a", "c", "b", "a"])
        assert p._class_of is None
        p.class_of(0)
        assert p._class_of is not None

    def test_lazy_map_matches_classes(self):
        p = partition_single(["a", "b", "a", "c", "b", "a"])
        for class_id, members in enumerate(p.classes):
            for row_id in members:
                assert p.class_of(row_id) == class_id
        # Row 3 holds the singleton value "c".
        assert p.class_of(3) is None

    def test_rank_does_not_build_map(self):
        left = partition_single(["a", "a", "b", "b", "c"])
        right = partition_single(["x", "x", "x", "y", "y"])
        product = partition_product(left, right)
        assert product.rank >= 0
        assert product._class_of is None
