"""Unit tests for the g3 approximation measure."""

import pytest

from repro.afd.g3 import dependency_error, key_error
from repro.afd.partition import partition_product, partition_single


def fd_error(lhs_column, rhs_column):
    lhs = partition_single(lhs_column)
    combined = partition_product(lhs, partition_single(rhs_column))
    return dependency_error(lhs, combined)


class TestDependencyError:
    def test_exact_fd_has_zero_error(self):
        # Model -> Make style: each lhs value maps to one rhs value.
        assert fd_error(["a", "a", "b", "b"], ["x", "x", "y", "y"]) == 0.0

    def test_full_violation(self):
        # One lhs class of 4 split evenly into 2 rhs values: remove 2 of 4.
        assert fd_error(["a", "a", "a", "a"], ["x", "x", "y", "y"]) == 0.5

    def test_minority_violation(self):
        # lhs class of 4 with rhs 3:1 split -> remove 1 of 4 tuples.
        assert fd_error(["a"] * 4, ["x", "x", "x", "y"]) == 0.25

    def test_singleton_lhs_classes_cost_nothing(self):
        assert fd_error(["a", "b", "c"], ["x", "y", "x"]) == 0.0

    def test_mixed_classes(self):
        # class{a}: 2 tuples consistent; class{b}: 3 tuples, 2:1 split.
        error = fd_error(["a", "a", "b", "b", "b"], ["x", "x", "y", "y", "z"])
        assert error == pytest.approx(1 / 5)

    def test_rhs_all_singletons_within_class(self):
        # lhs class of 3, rhs all distinct -> keep 1, remove 2.
        assert fd_error(["a", "a", "a"], ["x", "y", "z"]) == pytest.approx(2 / 3)

    def test_size_mismatch_raises(self):
        lhs = partition_single(["a", "a"])
        combined = partition_single(["a", "a", "b"])
        with pytest.raises(ValueError):
            dependency_error(lhs, combined)

    def test_empty_relation(self):
        empty = partition_single([])
        assert dependency_error(empty, empty) == 0.0


class TestKeyError:
    def test_unique_column_is_key(self):
        assert key_error(partition_single(["a", "b", "c"])) == 0.0

    def test_constant_column(self):
        # Keep one tuple of n: error (n-1)/n.
        assert key_error(partition_single(["a"] * 4)) == 0.75

    def test_partial_duplicates(self):
        # Classes {2 dup} over 4 rows: remove 1.
        assert key_error(partition_single(["a", "a", "b", "c"])) == 0.25

    def test_composite_key(self):
        left = partition_single(["x", "x", "y", "y"])
        right = partition_single(["1", "2", "1", "2"])
        assert key_error(partition_product(left, right)) == 0.0

    def test_empty_relation(self):
        assert key_error(partition_single([])) == 0.0
