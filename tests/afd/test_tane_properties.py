"""Property-based cross-validation of the TANE miner.

The miner's partition-product machinery is checked against brute-force
recomputation on small random tables: every reported AFD/key error must
equal the error computed directly from value tuples, minimality flags
must be consistent with the reported set, and nothing below the
threshold may be missed.
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afd.tane import TaneConfig, TaneMiner
from repro.db.schema import RelationSchema
from repro.db.table import Table

ATTRIBUTES = ("A", "B", "C", "D")


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(min_value=1, max_value=18))
    rows = [
        tuple(
            draw(st.sampled_from("xyz"))
            for _ in ATTRIBUTES
        )
        for _ in range(n_rows)
    ]
    schema = RelationSchema.build("T", categorical=ATTRIBUTES)
    table = Table(schema)
    table.extend(rows)
    return table


def brute_force_fd_error(table: Table, lhs: tuple[str, ...], rhs: str) -> float:
    """g3 by definition: remove minority rhs values within each lhs group."""
    groups: dict[tuple, dict[object, int]] = {}
    lhs_positions = table.schema.positions(lhs)
    rhs_position = table.schema.position(rhs)
    for row in table:
        key = tuple(row[p] for p in lhs_positions)
        groups.setdefault(key, {})
        value = row[rhs_position]
        groups[key][value] = groups[key].get(value, 0) + 1
    removed = sum(
        sum(counts.values()) - max(counts.values()) for counts in groups.values()
    )
    return removed / len(table)


def brute_force_key_error(table: Table, attrs: tuple[str, ...]) -> float:
    positions = table.schema.positions(attrs)
    seen: dict[tuple, int] = {}
    for row in table:
        key = tuple(row[p] for p in positions)
        seen[key] = seen.get(key, 0) + 1
    duplicates = sum(count - 1 for count in seen.values())
    return duplicates / len(table)


def unfiltered_config(threshold: float) -> TaneConfig:
    return TaneConfig(
        error_threshold=threshold,
        max_lhs_size=2,
        max_key_size=3,
        filter_trivial_consequents=False,
        filter_key_determinants=False,
    )


@given(small_tables(), st.sampled_from([0.0, 0.1, 0.25, 0.5]))
@settings(max_examples=60, deadline=None)
def test_reported_afd_errors_match_bruteforce(table, threshold):
    model = TaneMiner(unfiltered_config(threshold)).mine(table)
    for afd in model.afds:
        expected = brute_force_fd_error(table, afd.lhs, afd.rhs)
        assert abs(afd.error - expected) < 1e-9, afd.describe()
        assert afd.error <= threshold + 1e-9


@given(small_tables(), st.sampled_from([0.0, 0.1, 0.25, 0.5]))
@settings(max_examples=60, deadline=None)
def test_reported_key_errors_match_bruteforce(table, threshold):
    model = TaneMiner(unfiltered_config(threshold)).mine(table)
    for key in model.keys:
        expected = brute_force_key_error(table, key.attributes)
        assert abs(key.error - expected) < 1e-9, key.describe()
        assert key.error <= threshold + 1e-9


@given(small_tables(), st.sampled_from([0.1, 0.25]))
@settings(max_examples=40, deadline=None)
def test_no_qualifying_afd_missed(table, threshold):
    """Completeness: every below-threshold dependency must be reported."""
    model = TaneMiner(unfiltered_config(threshold)).mine(table)
    reported = {(afd.lhs, afd.rhs) for afd in model.afds}
    names = table.schema.attribute_names
    for size in (1, 2):
        for lhs in combinations(names, size):
            for rhs in names:
                if rhs in lhs:
                    continue
                error = brute_force_fd_error(table, lhs, rhs)
                if error <= threshold:
                    assert (tuple(lhs), rhs) in reported, (lhs, rhs, error)


@given(small_tables(), st.sampled_from([0.1, 0.25]))
@settings(max_examples=40, deadline=None)
def test_no_qualifying_key_missed(table, threshold):
    model = TaneMiner(unfiltered_config(threshold)).mine(table)
    reported = {key.attributes for key in model.keys}
    names = table.schema.attribute_names
    for size in (1, 2, 3):
        for attrs in combinations(names, size):
            if brute_force_key_error(table, attrs) <= threshold:
                assert tuple(attrs) in reported, attrs


@given(small_tables(), st.sampled_from([0.1, 0.25]))
@settings(max_examples=40, deadline=None)
def test_minimality_flags_consistent(table, threshold):
    """An AFD is flagged minimal iff no reported proper-subset
    determinant has the same consequent."""
    model = TaneMiner(unfiltered_config(threshold)).mine(table)
    by_rhs: dict[str, list[frozenset]] = {}
    for afd in model.afds:
        by_rhs.setdefault(afd.rhs, []).append(frozenset(afd.lhs))
    for afd in model.afds:
        lhs = frozenset(afd.lhs)
        has_smaller = any(
            other < lhs for other in by_rhs.get(afd.rhs, []) if other != lhs
        )
        assert afd.minimal == (not has_smaller), afd.describe()
