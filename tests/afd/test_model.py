"""Unit tests for AFD/key model objects and the dependency store."""

import pytest

from repro.afd.model import AFD, ApproximateKey, DependencyModel


class TestAFD:
    def test_support_is_one_minus_error(self):
        afd = AFD(lhs=("Model",), rhs="Make", error=0.1)
        assert afd.support == pytest.approx(0.9)
        assert afd.size == 1

    def test_trivial_rejected(self):
        with pytest.raises(ValueError):
            AFD(lhs=("Make",), rhs="Make", error=0.0)

    def test_empty_lhs_rejected(self):
        with pytest.raises(ValueError):
            AFD(lhs=(), rhs="Make", error=0.0)

    def test_error_bounds(self):
        with pytest.raises(ValueError):
            AFD(lhs=("A",), rhs="B", error=1.5)

    def test_describe(self):
        text = AFD(lhs=("Model", "Year"), rhs="Make", error=0.05).describe()
        assert "Model, Year" in text and "Make" in text


class TestApproximateKey:
    def test_quality_prefers_short_keys(self):
        short = ApproximateKey(attributes=("A",), error=0.1)
        long = ApproximateKey(attributes=("A", "B", "C"), error=0.1)
        assert short.quality > long.quality
        assert short.quality == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ApproximateKey(attributes=(), error=0.0)

    def test_describe(self):
        assert "quality" in ApproximateKey(("A", "B"), 0.2).describe()


def build_model() -> DependencyModel:
    model = DependencyModel(("Make", "Model", "Price", "Year"))
    model.add_afd(AFD(lhs=("Model",), rhs="Make", error=0.05))
    model.add_afd(AFD(lhs=("Model", "Year"), rhs="Price", error=0.1))
    model.add_afd(AFD(lhs=("Price",), rhs="Year", error=0.2, minimal=False))
    model.add_key(ApproximateKey(attributes=("Price", "Year"), error=0.1))
    model.add_key(ApproximateKey(attributes=("Model", "Price"), error=0.05))
    return model


class TestDependencyModel:
    def test_afds_determining(self):
        model = build_model()
        assert [a.lhs for a in model.afds_determining("Make")] == [("Model",)]
        assert model.afds_determining("Model") == ()

    def test_afds_with_determinant(self):
        model = build_model()
        assert len(model.afds_with_determinant("Model")) == 2

    def test_unknown_attribute_rejected(self):
        model = build_model()
        with pytest.raises(ValueError):
            model.add_afd(AFD(lhs=("Nope",), rhs="Make", error=0.0))
        with pytest.raises(ValueError):
            model.add_key(ApproximateKey(attributes=("Nope",), error=0.0))

    def test_best_key_by_support(self):
        best = build_model().best_key(by="support")
        assert best.attributes == ("Model", "Price")

    def test_best_key_by_quality(self):
        best = build_model().best_key(by="quality")
        assert best.attributes == ("Model", "Price")

    def test_best_key_unknown_criterion(self):
        with pytest.raises(ValueError):
            build_model().best_key(by="magic")

    def test_best_key_empty_model(self):
        model = DependencyModel(("A",))
        assert model.best_key() is None

    def test_keys_sorted_by_quality_ascending(self):
        ranked = build_model().keys_sorted_by_quality()
        qualities = [key.quality for key in ranked]
        assert qualities == sorted(qualities)

    def test_dependence_weight(self):
        model = build_model()
        # Make <- Model (support .95 / size 1)
        assert model.dependence_weight("Make") == pytest.approx(0.95)
        # Price <- (Model, Year): support .9 / 2
        assert model.dependence_weight("Price") == pytest.approx(0.45)

    def test_dependence_weight_minimal_only_default(self):
        model = build_model()
        # Year <- Price is flagged non-minimal; excluded by default.
        assert model.dependence_weight("Year") == 0.0
        assert model.dependence_weight("Year", minimal_only=False) == pytest.approx(
            0.8
        )

    def test_decides_weight(self):
        model = build_model()
        # Model appears in lhs of two minimal AFDs: .95/1 + .9/2
        assert model.decides_weight("Model") == pytest.approx(0.95 + 0.45)

    def test_iteration_and_properties(self):
        model = build_model()
        assert len(list(model)) == 3
        assert len(model.afds) == 3
        assert len(model.keys) == 2

    def test_summary_mentions_best_key(self):
        assert "best key{" in build_model().summary()
