"""Unit tests for the levelwise TANE miner."""

import pytest

from repro.afd.tane import TaneConfig, TaneMiner, bin_numeric_column, mine_dependencies
from repro.db.schema import RelationSchema
from repro.db.table import Table


def small_table() -> Table:
    """Model functionally determines Make; Id is unique; Price is noisy."""
    schema = RelationSchema.build(
        "T",
        categorical=("Make", "Model", "Color"),
        numeric=("Id",),
        order=("Id", "Make", "Model", "Color"),
    )
    table = Table(schema)
    rows = [
        (1, "Toyota", "Camry", "Red"),
        (2, "Toyota", "Camry", "Blue"),
        (3, "Toyota", "Corolla", "Red"),
        (4, "Honda", "Accord", "Red"),
        (5, "Honda", "Accord", "Blue"),
        (6, "Honda", "Civic", "Green"),
        (7, "Ford", "Focus", "Red"),
        (8, "Ford", "Focus", "Blue"),
    ]
    table.extend(rows)
    return table


def find_afd(model, lhs, rhs):
    for afd in model.afds:
        if afd.lhs == lhs and afd.rhs == rhs:
            return afd
    return None


class TestConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            TaneConfig(error_threshold=1.0)
        with pytest.raises(ValueError):
            TaneConfig(error_threshold=-0.1)

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            TaneConfig(max_lhs_size=0)
        with pytest.raises(ValueError):
            TaneConfig(max_key_size=0)
        with pytest.raises(ValueError):
            TaneConfig(numeric_bins=-1)


class TestBinning:
    def test_equal_width_bins(self):
        binned = bin_numeric_column([0, 5, 10], 2)
        assert binned == [0, 1, 1]

    def test_nulls_preserved(self):
        assert bin_numeric_column([None, 1, 2], 2)[0] is None

    def test_constant_column_single_bin(self):
        assert bin_numeric_column([3, 3, 3], 4) == [0, 0, 0]

    def test_empty_column(self):
        assert bin_numeric_column([], 3) == []

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            bin_numeric_column([1], 0)


class TestMining:
    def test_exact_fd_found(self):
        model = mine_dependencies(
            small_table(),
            TaneConfig(error_threshold=0.01, filter_key_determinants=False),
        )
        afd = find_afd(model, ("Model",), "Make")
        assert afd is not None
        assert afd.error == 0.0
        assert afd.minimal

    def test_unique_column_is_key(self):
        model = mine_dependencies(small_table(), TaneConfig(error_threshold=0.01))
        key_sets = {key.attributes for key in model.keys}
        assert ("Id",) in key_sets

    def test_superset_keys_flagged_non_minimal(self):
        model = mine_dependencies(
            small_table(), TaneConfig(error_threshold=0.01, max_key_size=2)
        )
        by_attrs = {key.attributes: key for key in model.keys}
        assert by_attrs[("Id",)].minimal
        assert not by_attrs[("Id", "Make")].minimal

    def test_keep_non_minimal_false_drops_them(self):
        model = mine_dependencies(
            small_table(),
            TaneConfig(error_threshold=0.01, max_key_size=2, keep_non_minimal=False),
        )
        assert all(key.minimal for key in model.keys)
        assert all(afd.minimal for afd in model.afds)

    def test_approximate_fd_within_threshold(self):
        # Make -> Model has error: Toyota{2 Camry,1 Corolla} 1 removed,
        # Honda{2 Accord,1 Civic} 1 removed, Ford{2 Focus} 0 -> 2/8.
        model = mine_dependencies(
            small_table(),
            TaneConfig(error_threshold=0.25, filter_key_determinants=False),
        )
        afd = find_afd(model, ("Make",), "Model")
        assert afd is not None
        assert afd.error == pytest.approx(0.25)

    def test_afd_excluded_above_threshold(self):
        model = mine_dependencies(
            small_table(),
            TaneConfig(error_threshold=0.1, filter_key_determinants=False),
        )
        assert find_afd(model, ("Make",), "Model") is None

    def test_max_lhs_size_respected(self):
        model = mine_dependencies(
            small_table(),
            TaneConfig(
                error_threshold=0.3, max_lhs_size=1, filter_key_determinants=False
            ),
        )
        assert all(afd.size == 1 for afd in model.afds)

    def test_key_determinant_filter(self):
        """With the filter on, {Id} -> X junk AFDs disappear."""
        unfiltered = mine_dependencies(
            small_table(),
            TaneConfig(error_threshold=0.01, filter_key_determinants=False),
        )
        assert find_afd(unfiltered, ("Id",), "Make") is not None
        filtered = mine_dependencies(
            small_table(), TaneConfig(error_threshold=0.01)
        )
        assert find_afd(filtered, ("Id",), "Make") is None
        # Genuine dependencies survive the filter.
        assert find_afd(filtered, ("Model",), "Make") is not None

    def test_trivial_consequent_filter(self):
        schema = RelationSchema.build("T", categorical=("A", "B"))
        table = Table(schema)
        # B is constant: everything "determines" it trivially.
        table.extend([("a1", "x"), ("a1", "x"), ("a2", "x"), ("a2", "x")])
        filtered = mine_dependencies(table, TaneConfig(error_threshold=0.1))
        assert find_afd(filtered, ("A",), "B") is None
        unfiltered = mine_dependencies(
            table,
            TaneConfig(error_threshold=0.1, filter_trivial_consequents=False),
        )
        assert find_afd(unfiltered, ("A",), "B") is not None

    def test_empty_table(self):
        schema = RelationSchema.build("T", categorical=("A", "B"))
        model = mine_dependencies(Table(schema))
        assert model.afds == () and model.keys == ()

    def test_numeric_binning_enables_afd(self):
        """Raw near-unique numeric yields no AFDs onto it; binning does."""
        schema = RelationSchema.build(
            "T", categorical=("Grade",), numeric=("Score",), order=("Grade", "Score")
        )
        table = Table(schema)
        # Score in [0,10) for grade "low", [90,100) for "high".
        for i in range(10):
            table.insert(("low", float(i)))
            table.insert(("high", 90.0 + i))
        binned = mine_dependencies(
            table, TaneConfig(error_threshold=0.05, numeric_bins=2)
        )
        assert find_afd(binned, ("Grade",), "Score") is not None

    def test_miner_reusable_across_tables(self):
        miner = TaneMiner(TaneConfig(error_threshold=0.01))
        first = miner.mine(small_table())
        second = miner.mine(small_table())
        assert len(first.afds) == len(second.afds)

    def test_deterministic(self):
        a = mine_dependencies(small_table(), TaneConfig(error_threshold=0.3))
        b = mine_dependencies(small_table(), TaneConfig(error_threshold=0.3))
        assert [afd.describe() for afd in a.afds] == [
            afd.describe() for afd in b.afds
        ]


class TestCarDBMining:
    def test_model_determines_make(self, car_table):
        model = mine_dependencies(
            car_table, TaneConfig(error_threshold=0.1, numeric_bins=8)
        )
        afd = find_afd(model, ("Model",), "Make")
        assert afd is not None and afd.error == 0.0

    def test_keys_exist(self, car_table):
        model = mine_dependencies(
            car_table, TaneConfig(error_threshold=0.3, numeric_bins=8)
        )
        assert len(model.keys) > 0
