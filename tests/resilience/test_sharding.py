"""Per-shard circuit breakers and degradation accounting (ShardResilience)."""

from __future__ import annotations

import pytest

from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.predicates import Eq
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.sharded import ShardedWebDatabase, shard_of
from repro.db.table import Table
from repro.resilience import (
    BreakerShardGuard,
    CircuitBreaker,
    ResiliencePolicy,
    ShardResilience,
    VirtualClock,
)

SCHEMA = RelationSchema.build(
    "cars",
    categorical=("Make",),
    numeric=("Price",),
    order=("Make", "Price"),
)

ROWS = [
    ("honda", 10),
    ("toyota", 20),
    ("honda", 30),
    ("ford", 40),
    ("toyota", 50),
    ("honda", 60),
    ("ford", 70),
    ("toyota", 80),
]

ALL = SelectionQuery(())


def build_sharded(n_shards=2, **kwargs) -> ShardedWebDatabase:
    table = Table(SCHEMA)
    for row in ROWS:
        table.insert(row)
    return ShardedWebDatabase.partition(table, n_shards, **kwargs)


def always_down() -> FaultPolicy:
    return FaultPolicy(FaultSpec(outages=((0, 10_000),)), seed=0)


def test_breakers_are_sized_by_the_policy_and_attached():
    sharded = build_sharded(n_shards=3, partial_results=True)
    wiring = ShardResilience(
        sharded,
        policy=ResiliencePolicy(breaker_failure_threshold=2),
        clock=VirtualClock(),
    )
    assert len(wiring.breakers) == 3
    assert wiring.breaker_opens() == 0


def test_failing_shard_trips_its_breaker_and_is_ejected():
    clock = VirtualClock()
    sharded = build_sharded(n_shards=2, partial_results=True)
    wiring = ShardResilience(
        sharded,
        policy=ResiliencePolicy(
            breaker_failure_threshold=2, breaker_recovery_seconds=5.0
        ),
        clock=clock,
    )
    sharded.set_shard_fault_policy(0, always_down())
    healthy_ids = [
        i for i, row in enumerate(ROWS) if shard_of(row, 2) == 1
    ]

    # Two failing scatters reach the shard and trip the breaker.
    for expected_failures in (1, 2):
        result = sharded.query(ALL)
        assert list(result.row_ids) == healthy_ids
        assert wiring.report.probes_failed == expected_failures
    assert wiring.breaker_opens() == 1
    assert not wiring.report.breaker_open

    # The third scatter is refused at admission: the shard source is
    # never contacted, and the report flags the open breaker.
    before = sharded.shard_probe_logs()[0].probes_issued
    result = sharded.query(ALL)
    assert list(result.row_ids) == healthy_ids
    assert sharded.shard_probe_logs()[0].probes_issued == before
    assert wiring.report.breaker_open
    assert wiring.report.skipped[-1].stage == "shard0:query"
    assert wiring.report.skipped[-1].error_kind == "CircuitOpenError"

    # After the recovery window the breaker half-opens, the probe is
    # retried against the still-down shard, and the breaker reopens.
    clock.advance(5.0)
    sharded.query(ALL)
    assert sharded.shard_probe_logs()[0].probes_issued == before
    assert wiring.breaker_opens() == 2


def test_recovered_shard_closes_its_breaker_and_rejoins():
    clock = VirtualClock()
    sharded = build_sharded(n_shards=2, partial_results=True)
    wiring = ShardResilience(
        sharded,
        policy=ResiliencePolicy(
            breaker_failure_threshold=1, breaker_recovery_seconds=3.0
        ),
        clock=clock,
    )
    # Down for exactly one attempt, then healthy.
    sharded.set_shard_fault_policy(
        0, FaultPolicy(FaultSpec(outages=((0, 1),)), seed=0)
    )
    sharded.query(ALL)  # trips the threshold-1 breaker
    assert wiring.breaker_opens() == 1
    clock.advance(3.0)
    result = sharded.query(ALL)  # half-open trial succeeds
    assert list(result.row_ids) == list(range(len(ROWS)))
    assert wiring.breakers[0].state.value == "closed"


def test_degradation_stages_name_shard_and_probe_kind():
    sharded = build_sharded(n_shards=2, partial_results=True)
    wiring = ShardResilience(sharded, clock=VirtualClock())
    sharded.set_shard_fault_policy(0, always_down())
    sharded.query(ALL)
    sharded.count(ALL)
    stages = [step.stage for step in wiring.report.skipped]
    assert stages == ["shard0:query", "shard0:count"]
    assert wiring.report.degraded
    assert wiring.report.probes_failed == 2


def test_policy_without_breakers_still_reports_degradation():
    sharded = build_sharded(n_shards=2, partial_results=True)
    wiring = ShardResilience(
        sharded,
        policy=ResiliencePolicy(breaker_failure_threshold=None),
        clock=VirtualClock(),
    )
    assert wiring.breakers == ()
    sharded.set_shard_fault_policy(0, always_down())
    sharded.query(SelectionQuery((Eq("Make", "honda"),)))
    assert wiring.report.probes_failed == 1
    assert wiring.breaker_opens() == 0


def test_fresh_report_starts_a_clean_slate():
    sharded = build_sharded(n_shards=2, partial_results=True)
    wiring = ShardResilience(sharded, clock=VirtualClock())
    sharded.set_shard_fault_policy(0, always_down())
    sharded.query(ALL)
    assert wiring.report.degraded
    report = wiring.fresh_report()
    assert report is wiring.report
    assert not wiring.report.degraded
    sharded.query(ALL)
    assert wiring.report.probes_failed == 1


def test_breaker_guard_adapter_feeds_the_breaker():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=1, clock=clock)
    guard = BreakerShardGuard(breaker)
    guard.before_call()
    guard.record_failure(RuntimeError("boom"))
    with pytest.raises(Exception, match="circuit"):
        guard.before_call()
    clock.advance(breaker.recovery_seconds)
    guard.before_call()
    guard.record_success()
    assert breaker.state.value == "closed"
