"""Chaos suite: seeded fault schedules swept across a seed matrix.

Every test here is deterministic — chaos means *adversarial
schedules*, not nondeterminism.  The seed matrix below can be shifted
by the ``CHAOS_SEED`` environment variable (the CI chaos job runs one
shard per offset), and any failure reproduces exactly by re-running
with the same offset.
"""

import os

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.db import AutonomousWebDatabase, FaultPolicy, FaultSpec
from repro.resilience import ResiliencePolicy, RetryConfig, VirtualClock
from repro.sampling import CollectionInterrupted, probe_all

pytestmark = pytest.mark.chaos

_OFFSET = int(os.environ.get("CHAOS_SEED", "0"))
SEEDS = [_OFFSET * 100 + base for base in (1, 2, 3, 5, 8)]

QUERY = ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)


@pytest.fixture(scope="module")
def car_model(car_table):
    sample = car_table.sample(range(0, len(car_table), 4))
    return build_model_from_sample(
        sample, settings=AIMQSettings(max_relaxation_level=2)
    )


@pytest.fixture(scope="module")
def clean_answers(car_model, car_table):
    webdb = AutonomousWebDatabase(car_table)
    answers = car_model.engine(webdb).answer(QUERY, k=10)
    return answers, webdb.log.probes_issued


@pytest.mark.parametrize("seed", SEEDS)
class TestScheduleDeterminism:
    def test_fault_schedules_replay_exactly(self, seed):
        spec = FaultSpec(
            transient_rate=0.2,
            timeout_rate=0.05,
            throttle_rate=0.05,
            truncation_rate=0.1,
        )
        a = FaultPolicy(spec, seed=seed)
        b = FaultPolicy(spec, seed=seed)
        assert [a.decide().signature for _ in range(500)] == [
            b.decide().signature for _ in range(500)
        ]

    def test_engine_runs_replay_exactly(self, seed, car_model, car_table):
        def run():
            webdb = AutonomousWebDatabase(
                car_table,
                fault_policy=FaultPolicy(
                    FaultSpec(transient_rate=0.3), seed=seed
                ),
            )
            engine = car_model.engine(
                webdb,
                resilience=ResiliencePolicy(
                    retry=RetryConfig(max_attempts=10, seed=seed)
                ),
                clock=VirtualClock(),
            )
            answers = engine.answer(QUERY, k=10)
            return (
                answers.row_ids,
                [a.similarity for a in answers],
                answers.degraded,
                webdb.log.probes_issued,
                dict(webdb.fault_policy.injected),
            )

        assert run() == run()


@pytest.mark.parametrize("seed", SEEDS)
class TestTransientConvergence:
    def test_retries_heal_any_transient_schedule(
        self, seed, car_model, car_table, clean_answers
    ):
        """For every seed in the matrix: transient-only faults plus
        retries produce the exact fault-free answers."""
        clean, _ = clean_answers
        webdb = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(
                FaultSpec(transient_rate=0.3, timeout_rate=0.05),
                seed=seed,
            ),
        )
        engine = car_model.engine(
            webdb,
            resilience=ResiliencePolicy(
                retry=RetryConfig(max_attempts=12, seed=seed)
            ),
            clock=VirtualClock(),
        )
        healed = engine.answer(QUERY, k=10)
        assert not healed.degraded
        assert healed.row_ids == clean.row_ids
        assert [a.similarity for a in healed] == [
            a.similarity for a in clean
        ]

    def test_resumable_collection_heals(self, seed, car_table):
        clean, _ = probe_all(
            AutonomousWebDatabase(car_table), spanning_attribute="Model"
        )
        flaky = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(
                FaultSpec(transient_rate=0.35), seed=seed
            ),
        )
        checkpoint = None
        for _ in range(300):
            try:
                collected, _ = probe_all(
                    flaky,
                    spanning_attribute="Model",
                    resumable=True,
                    checkpoint=checkpoint,
                )
                break
            except CollectionInterrupted as interrupt:
                checkpoint = interrupt.checkpoint
        else:
            pytest.fail("collection never completed")
        assert list(collected.rows()) == list(clean.rows())


class TestDisabledPolicyEquivalence:
    def test_engine_accounting_bit_identical(
        self, car_model, car_table, clean_answers
    ):
        """A zero-rate policy must not perturb answers, ProbeLog
        accounting, or the Fig 6–7 probe counts."""
        clean, clean_probes = clean_answers
        zeroed = AutonomousWebDatabase(
            car_table, fault_policy=FaultPolicy(FaultSpec(), seed=99)
        )
        answers = car_model.engine(zeroed).answer(QUERY, k=10)
        assert answers.row_ids == clean.row_ids
        assert [a.similarity for a in answers] == [
            a.similarity for a in clean
        ]
        assert not answers.degraded
        assert zeroed.log.probes_issued == clean_probes
        assert answers.trace.queries_issued == clean.trace.queries_issued
        assert sum(zeroed.fault_policy.injected.values()) == 0

    def test_resilience_wrapper_alone_is_equivalent(
        self, car_model, car_table, clean_answers
    ):
        """Resilience around a healthy source changes nothing either."""
        clean, clean_probes = clean_answers
        webdb = AutonomousWebDatabase(car_table)
        engine = car_model.engine(
            webdb,
            resilience=ResiliencePolicy(
                probe_deadline_seconds=60.0, query_deadline_seconds=600.0
            ),
            clock=VirtualClock(),
        )
        answers = engine.answer(QUERY, k=10)
        assert answers.row_ids == clean.row_ids
        assert not answers.degraded
        assert webdb.log.probes_issued == clean_probes
