"""Retry with deterministic backoff, and the deadline budgets under it."""

import pytest

from repro.db.errors import (
    QueryError,
    SourceThrottledError,
    TransientProbeError,
    TransientSourceError,
)
from repro.resilience import (
    DeadlineBudget,
    DeadlineExceededError,
    Retrier,
    RetryConfig,
    VirtualClock,
)


class _Flaky:
    """Fails ``failures`` times with ``error``, then returns ``value``."""

    def __init__(self, failures, error=None, value="ok"):
        self.failures = failures
        self.error = error or TransientProbeError()
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestRetryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryConfig(max_attempts=0)
        with pytest.raises(ValueError):
            RetryConfig(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryConfig(jitter=1.5)


class TestBackoffSchedule:
    def test_deterministic_under_seed(self):
        config = RetryConfig(seed=7)
        first = Retrier(config, VirtualClock())
        second = Retrier(config, VirtualClock())
        assert [first.backoff_delay(n) for n in range(1, 6)] == [
            second.backoff_delay(n) for n in range(1, 6)
        ]

    def test_exponential_shape_with_cap(self):
        config = RetryConfig(
            base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        retrier = Retrier(config, VirtualClock())
        assert retrier.backoff_delay(1) == pytest.approx(0.1)
        assert retrier.backoff_delay(2) == pytest.approx(0.2)
        assert retrier.backoff_delay(3) == pytest.approx(0.3)
        assert retrier.backoff_delay(5) == pytest.approx(0.3)

    def test_jitter_only_shrinks_the_delay(self):
        config = RetryConfig(base_delay=0.2, jitter=0.5)
        retrier = Retrier(config, VirtualClock())
        for attempt in range(1, 20):
            delay = retrier.backoff_delay(attempt)
            raw = min(config.max_delay, 0.2 * 2.0 ** (attempt - 1))
            assert raw * 0.5 <= delay <= raw

    def test_retry_after_hint_is_a_floor(self):
        retrier = Retrier(
            RetryConfig(base_delay=0.01, jitter=0.0), VirtualClock()
        )
        assert retrier.backoff_delay(1, retry_after=0.5) == pytest.approx(0.5)


class TestCall:
    def test_transient_failures_are_cured(self):
        clock = VirtualClock()
        retrier = Retrier(RetryConfig(max_attempts=4, seed=1), clock)
        flaky = _Flaky(failures=2)
        assert retrier.call(flaky) == "ok"
        assert flaky.calls == 3
        assert retrier.retries == 2
        assert len(clock.sleeps) == 2

    def test_sleep_schedule_matches_backoff_delay(self):
        config = RetryConfig(max_attempts=5, seed=11)
        clock = VirtualClock()
        retrier = Retrier(config, clock)
        retrier.call(_Flaky(failures=3))
        reference = Retrier(config, VirtualClock())
        assert clock.sleeps == pytest.approx(
            [reference.backoff_delay(n) for n in (1, 2, 3)]
        )

    def test_exhaustion_reraises_the_original_error(self):
        clock = VirtualClock()
        retrier = Retrier(RetryConfig(max_attempts=3), clock)
        flaky = _Flaky(failures=10)
        with pytest.raises(TransientProbeError):
            retrier.call(flaky)
        assert flaky.calls == 3
        assert retrier.exhaustions == 1
        assert len(clock.sleeps) == 2  # no sleep after the last attempt

    def test_permanent_errors_propagate_immediately(self):
        clock = VirtualClock()
        retrier = Retrier(RetryConfig(max_attempts=5), clock)
        flaky = _Flaky(failures=10, error=QueryError("malformed"))
        with pytest.raises(QueryError):
            retrier.call(flaky)
        assert flaky.calls == 1
        assert clock.sleeps == []

    def test_throttle_retry_after_respected(self):
        clock = VirtualClock()
        retrier = Retrier(
            RetryConfig(max_attempts=2, base_delay=0.001, jitter=0.0), clock
        )
        flaky = _Flaky(
            failures=1, error=SourceThrottledError(retry_after=0.75)
        )
        assert retrier.call(flaky) == "ok"
        assert clock.sleeps == [pytest.approx(0.75)]


class TestDeadlineBudget:
    def test_unlimited_budget_never_expires(self):
        clock = VirtualClock()
        budget = DeadlineBudget(None, clock, scope="query")
        clock.advance(10_000)
        assert not budget.expired
        assert budget.affords_sleep(10_000)
        budget.require()

    def test_require_raises_after_expiry(self):
        clock = VirtualClock()
        budget = DeadlineBudget(1.0, clock, scope="probe")
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as info:
            budget.require()
        assert info.value.scope == "probe"
        assert info.value.budget_seconds == pytest.approx(1.0)
        assert info.value.elapsed_seconds == pytest.approx(2.0)

    def test_budget_refuses_unaffordable_sleep(self):
        clock = VirtualClock()
        retrier = Retrier(
            RetryConfig(max_attempts=5, base_delay=2.0, jitter=0.0), clock
        )
        budget = DeadlineBudget(1.0, clock, scope="probe")
        with pytest.raises(DeadlineExceededError) as info:
            retrier.call(_Flaky(failures=10), budgets=(budget,))
        assert info.value.scope == "probe"
        assert isinstance(info.value.__cause__, TransientSourceError)
        assert clock.sleeps == []  # the refusal happened before sleeping

    def test_affords_sleep_requires_strictly_positive_headroom(self):
        clock = VirtualClock()
        budget = DeadlineBudget(1.0, clock, scope="probe")
        assert budget.affords_sleep(0.999)
        assert not budget.affords_sleep(1.0)  # sleeps exactly to the deadline
        assert not budget.affords_sleep(1.5)
        clock.advance(1.0)
        assert not budget.affords_sleep(0.0)  # nothing left at all

    def test_backoff_never_sleeps_budget_to_exhaustion(self):
        # Regression: a delay exactly equal to the remaining budget used
        # to be "affordable", so the retrier slept the budget to zero and
        # the next attempt's require() raised an *uncaused* deadline
        # error after the time was already burned.  The refusal must now
        # happen before the sleep, chained from the transient failure.
        clock = VirtualClock()
        retrier = Retrier(
            RetryConfig(max_attempts=5, base_delay=1.0, jitter=0.0), clock
        )
        budget = DeadlineBudget(1.0, clock, scope="query")
        with pytest.raises(DeadlineExceededError) as info:
            retrier.call(_Flaky(failures=10), budgets=(budget,))
        assert info.value.scope == "query"
        assert isinstance(info.value.__cause__, TransientSourceError)
        assert clock.sleeps == []

    def test_budget_exhausted_during_attempt_refuses_without_sleeping(self):
        # The attempt itself can consume the whole budget (a slow probe
        # under a SystemClock).  The follow-up backoff must refuse with
        # the causal chain intact rather than sleeping past the deadline.
        clock = VirtualClock()

        def slow_then_transient():
            clock.advance(1.5)
            raise TransientProbeError()

        retrier = Retrier(
            RetryConfig(max_attempts=5, base_delay=0.01, jitter=0.0), clock
        )
        budget = DeadlineBudget(1.0, clock, scope="probe")
        with pytest.raises(DeadlineExceededError) as info:
            retrier.call(slow_then_transient, budgets=(budget,))
        assert isinstance(info.value.__cause__, TransientSourceError)
        assert clock.sleeps == []

    def test_budget_spanning_retries_expires_between_attempts(self):
        clock = VirtualClock()
        retrier = Retrier(
            RetryConfig(max_attempts=10, base_delay=0.6, jitter=0.0), clock
        )
        budget = DeadlineBudget(1.0, clock, scope="query")
        with pytest.raises(DeadlineExceededError):
            retrier.call(_Flaky(failures=10), budgets=(budget,))
        # 0.6 affordable, cumulative 1.2 is not: exactly one sleep ran.
        assert clock.sleeps == [pytest.approx(0.6)]


class TestDeadlineScopeThreadIsolation:
    def test_scope_is_invisible_to_other_threads(self, car_webdb):
        import threading

        from repro.db import Eq, SelectionQuery
        from repro.resilience import (
            DeadlineExceededError as Expired,
            ResiliencePolicy,
            ResilientWebDatabase,
        )

        clock = VirtualClock()
        guarded = ResilientWebDatabase(
            car_webdb,
            ResiliencePolicy(query_deadline_seconds=1.0),
            clock=clock,
        )
        probe = SelectionQuery((Eq("Make", "Toyota"),))
        expired_scope_open = threading.Event()
        other_thread_done = threading.Event()
        outcome = {}

        def holder():
            with guarded.deadline_scope():
                clock.advance(2.0)  # this thread's budget is now expired
                try:
                    guarded.count(probe)
                except Expired:
                    outcome["holder"] = "expired"
                expired_scope_open.set()
                other_thread_done.wait(timeout=10)

        def prober():
            expired_scope_open.wait(timeout=10)
            # Concurrent session on the same facade: the holder's
            # expired budget must not leak into this thread.
            outcome["prober"] = guarded.count(probe)
            other_thread_done.set()

        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=prober),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads)
        assert outcome["holder"] == "expired"
        assert isinstance(outcome["prober"], int)
