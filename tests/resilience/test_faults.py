"""Fault side: the seeded injection policy and its facade hook."""

import pytest

from repro.db import (
    AutonomousWebDatabase,
    Eq,
    FaultPolicy,
    FaultSpec,
    SelectionQuery,
    SourceThrottledError,
    SourceUnavailableError,
    TransientProbeError,
    TransientSourceError,
)
from repro.obs import OBS


def _probe(table):
    """A selection that matches a healthy slice of the car table."""
    return SelectionQuery((Eq("Make", "Toyota"),))


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=0.6, timeout_rate=0.6)
        with pytest.raises(ValueError):
            FaultSpec(truncation_keep_fraction=0.0)
        with pytest.raises(ValueError):
            FaultSpec(outages=((5, 5),))

    def test_outage_windows_are_half_open(self):
        spec = FaultSpec(outages=((2, 4),))
        assert not spec.in_outage(1)
        assert spec.in_outage(2)
        assert spec.in_outage(3)
        assert not spec.in_outage(4)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec(
            transient_rate=0.2, timeout_rate=0.1, truncation_rate=0.3
        )
        first = FaultPolicy(spec, seed=42)
        second = FaultPolicy(spec, seed=42)
        signatures = [first.decide().signature for _ in range(300)]
        assert signatures == [second.decide().signature for _ in range(300)]

    def test_different_seed_different_schedule(self):
        spec = FaultSpec(transient_rate=0.3)
        first = FaultPolicy(spec, seed=1)
        second = FaultPolicy(spec, seed=2)
        assert [first.decide().signature for _ in range(200)] != [
            second.decide().signature for _ in range(200)
        ]

    def test_error_draws_aligned_across_specs(self):
        """Enabling extra fault kinds never shifts the error schedule."""
        lean = FaultPolicy(FaultSpec(transient_rate=0.25), seed=9)
        rich = FaultPolicy(
            FaultSpec(transient_rate=0.25, truncation_rate=0.5), seed=9
        )
        lean_errors = [
            d.attempt_index
            for d in (lean.decide() for _ in range(400))
            if d.kind == "transient"
        ]
        rich_errors = [
            d.attempt_index
            for d in (rich.decide() for _ in range(400))
            if d.kind == "transient"
        ]
        assert lean_errors == rich_errors
        assert lean_errors  # the rate is high enough to fire

    def test_each_error_kind_maps_to_its_exception(self):
        always_transient = FaultPolicy(FaultSpec(transient_rate=1.0))
        assert isinstance(always_transient.decide().error, TransientProbeError)
        always_throttle = FaultPolicy(FaultSpec(throttle_rate=1.0))
        error = always_throttle.decide().error
        assert isinstance(error, SourceThrottledError)
        assert error.retry_after == pytest.approx(0.05)

    def test_outage_overrides_error_rates(self):
        policy = FaultPolicy(
            FaultSpec(transient_rate=1.0, outages=((0, 2),)), seed=0
        )
        assert policy.decide().kind == "outage"
        assert policy.decide().kind == "outage"
        assert policy.decide().kind == "transient"


class TestFacadeHook:
    def test_injected_fault_skips_probe_accounting(self, car_table):
        webdb = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(FaultSpec(transient_rate=1.0)),
        )
        with pytest.raises(TransientProbeError):
            webdb.query(_probe(car_table))
        assert webdb.log.probes_issued == 0
        assert webdb.fault_policy.injected["transient"] == 1

    def test_injected_fault_does_not_charge_budget(self, car_table):
        webdb = AutonomousWebDatabase(car_table, probe_budget=1)
        webdb.set_fault_policy(FaultPolicy(FaultSpec(transient_rate=1.0)))
        for _ in range(5):
            with pytest.raises(TransientSourceError):
                webdb.query(_probe(car_table))
        webdb.set_fault_policy(None)
        # The budget is still whole: one real probe goes through.
        assert len(webdb.query(_probe(car_table))) > 0

    def test_count_probes_also_fault(self, car_table):
        webdb = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(FaultSpec(transient_rate=1.0)),
        )
        with pytest.raises(TransientProbeError):
            webdb.count(_probe(car_table))
        assert webdb.log.count_probes == 0

    def test_truncation_cuts_page_and_skips_cache(self, car_table):
        webdb = AutonomousWebDatabase(car_table)
        full = len(webdb.query(_probe(car_table)))
        assert full >= 2
        webdb.reset_accounting()
        webdb.enable_probe_cache(capacity=64)
        webdb.set_fault_policy(
            FaultPolicy(
                FaultSpec(
                    truncation_rate=1.0, truncation_keep_fraction=0.5
                )
            )
        )
        cut = webdb.query(_probe(car_table))
        assert len(cut) == max(1, full // 2)
        assert cut.truncated
        assert webdb.fault_policy.injected["truncation"] == 1
        # The corrupted page was not cached: the repeat hits the source.
        webdb.query(_probe(car_table))
        assert webdb.log.cache_hits == 0
        assert webdb.log.probes_issued == 2

    def test_outage_window_then_recovery(self, car_table):
        webdb = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(FaultSpec(outages=((0, 3),))),
        )
        for _ in range(3):
            with pytest.raises(SourceUnavailableError):
                webdb.query(_probe(car_table))
        assert len(webdb.query(_probe(car_table))) > 0

    def test_disabled_policy_is_bit_identical(self, car_table):
        """No policy, an explicit None, and an all-zero spec all leave
        probe results and accounting exactly as the seed had them."""
        plain = AutonomousWebDatabase(car_table)
        explicit = AutonomousWebDatabase(car_table, fault_policy=None)
        zeroed = AutonomousWebDatabase(
            car_table, fault_policy=FaultPolicy(FaultSpec(), seed=3)
        )
        queries = [
            SelectionQuery((Eq("Make", make),))
            for make in ("Toyota", "Honda", "Ford")
        ]
        outputs = []
        for webdb in (plain, explicit, zeroed):
            pages = [webdb.query(query) for query in queries]
            outputs.append(
                (
                    [(p.row_ids, p.rows, p.truncated) for p in pages],
                    webdb.log.probes_issued,
                    webdb.log.tuples_returned,
                    webdb.log.empty_results,
                )
            )
        assert outputs[0] == outputs[1] == outputs[2]
        assert all(count == 0 for count in zeroed.fault_policy.injected.values())

    def test_injections_counted_in_metrics(self, car_table):
        OBS.reset()
        OBS.enable()
        try:
            webdb = AutonomousWebDatabase(
                car_table,
                fault_policy=FaultPolicy(FaultSpec(transient_rate=1.0)),
            )
            with pytest.raises(TransientProbeError):
                webdb.query(_probe(car_table))
            snapshot = OBS.registry.snapshot()
            families = {m["name"]: m for m in snapshot["metrics"]}
            family = families["repro_db_faults_injected_total"]
            series = {
                tuple(sorted((s.get("labels") or {}).items())): s["value"]
                for s in family["series"]
            }
            assert series[(("kind", "transient"),)] == 1
        finally:
            OBS.reset()
            OBS.disable()
