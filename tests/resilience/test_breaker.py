"""Circuit breaker state machine over the injectable clock."""

import pytest

from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    VirtualClock,
)


def make_breaker(threshold=3, recovery=5.0):
    clock = VirtualClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, recovery_seconds=recovery, clock=clock
    )
    return breaker, clock


class TestConstruction:
    def test_clock_is_required(self):
        with pytest.raises(ValueError):
            CircuitBreaker(clock=None)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=VirtualClock())


class TestStateMachine:
    def test_opens_after_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions == [("closed", "open")]

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_circuit_rejects_calls_with_retry_hint(self):
        breaker, clock = make_breaker(threshold=1, recovery=5.0)
        breaker.record_failure()
        clock.advance(2.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.before_call()
        assert info.value.retry_in == pytest.approx(3.0)
        assert breaker.rejections == 1

    def test_recovery_window_admits_a_trial_call(self):
        breaker, clock = make_breaker(threshold=1, recovery=5.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.before_call()  # the trial call is admitted

    def test_trial_success_closes_the_circuit(self):
        breaker, clock = make_breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_trial_failure_reopens_for_a_fresh_window(self):
        breaker, clock = make_breaker(threshold=1, recovery=2.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.0)
        assert breaker.state is BreakerState.OPEN  # window restarted
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.open_count == 2
