"""Checkpoint/resume for collection runs against failing sources."""

import pytest

from repro.db import AutonomousWebDatabase, FaultPolicy, FaultSpec
from repro.db.errors import ProbeLimitExceededError
from repro.sampling import (
    CollectionCheckpoint,
    CollectionInterrupted,
    probe_all,
)


class TestCheckpointSerialisation:
    def test_json_round_trip(self):
        checkpoint = CollectionCheckpoint(
            spanning_attribute="Make",
            next_query_index=3,
            next_offset=40,
            rows=(("Toyota", "Camry", 1999), ("Honda", "Civic", 2001)),
            probes_issued=7,
            truncated_probes=1,
            pages_followed=2,
        )
        assert CollectionCheckpoint.from_json(checkpoint.to_json()) == checkpoint

    def test_positions_validated(self):
        with pytest.raises(ValueError):
            CollectionCheckpoint(
                spanning_attribute="Make",
                next_query_index=-1,
                next_offset=0,
                rows=(),
            )


class TestResumableCollection:
    def test_default_mode_propagates_unchanged(self, car_table):
        limited = AutonomousWebDatabase(car_table, probe_budget=3)
        with pytest.raises(ProbeLimitExceededError):
            probe_all(limited, spanning_attribute="Model")

    def test_interrupt_carries_a_checkpoint(self, car_table):
        limited = AutonomousWebDatabase(car_table, probe_budget=3)
        with pytest.raises(CollectionInterrupted) as info:
            probe_all(limited, spanning_attribute="Model", resumable=True)
        checkpoint = info.value.checkpoint
        assert checkpoint.spanning_attribute == "Model"
        assert checkpoint.probes_issued == 3
        assert len(checkpoint.rows) > 0
        assert isinstance(info.value.__cause__, ProbeLimitExceededError)

    def test_resume_completes_without_reissuing_probes(self, car_table):
        clean = AutonomousWebDatabase(car_table)
        full, clean_report = probe_all(clean, spanning_attribute="Model")

        limited = AutonomousWebDatabase(car_table, probe_budget=5)
        with pytest.raises(CollectionInterrupted) as info:
            probe_all(limited, spanning_attribute="Model", resumable=True)
        checkpoint = info.value.checkpoint

        fresh = AutonomousWebDatabase(car_table)
        resumed, report = probe_all(
            fresh, resumable=True, checkpoint=checkpoint
        )
        assert list(resumed.rows()) == list(full.rows())
        assert report.tuples_collected == clean_report.tuples_collected
        # The resumed run paid only for the probes the first run missed.
        assert (
            fresh.log.probes_issued
            == clean_report.probes_issued - checkpoint.probes_issued
        )
        assert report.probes_issued == clean_report.probes_issued

    def test_resume_survives_repeated_faults(self, car_table):
        """Keep resuming through a flaky source until collection lands."""
        clean = AutonomousWebDatabase(car_table)
        full, _ = probe_all(clean, spanning_attribute="Model")

        flaky = AutonomousWebDatabase(
            car_table,
            fault_policy=FaultPolicy(
                FaultSpec(transient_rate=0.4), seed=13
            ),
        )
        checkpoint = None
        for _ in range(200):
            try:
                collected, _ = probe_all(
                    flaky,
                    spanning_attribute="Model",
                    resumable=True,
                    checkpoint=checkpoint,
                )
                break
            except CollectionInterrupted as interrupt:
                checkpoint = interrupt.checkpoint
        else:
            pytest.fail("collection never completed through the flaky source")
        assert list(collected.rows()) == list(full.rows())

    def test_round_trip_through_json_mid_run(self, car_table):
        limited = AutonomousWebDatabase(car_table, probe_budget=5)
        with pytest.raises(CollectionInterrupted) as info:
            probe_all(limited, spanning_attribute="Model", resumable=True)
        revived = CollectionCheckpoint.from_json(
            info.value.checkpoint.to_json()
        )
        fresh = AutonomousWebDatabase(car_table)
        resumed, _ = probe_all(fresh, resumable=True, checkpoint=revived)
        clean, _ = probe_all(
            AutonomousWebDatabase(car_table), spanning_attribute="Model"
        )
        assert list(resumed.rows()) == list(clean.rows())

    def test_mismatched_spanning_attribute_is_rejected(self, car_table):
        checkpoint = CollectionCheckpoint(
            spanning_attribute="Model",
            next_query_index=0,
            next_offset=0,
            rows=(),
        )
        webdb = AutonomousWebDatabase(car_table)
        with pytest.raises(ValueError, match="spanning attribute"):
            probe_all(
                webdb,
                spanning_attribute="Make",
                resumable=True,
                checkpoint=checkpoint,
            )
