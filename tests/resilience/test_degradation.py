"""Degraded answers: the engine under outages, faults and deadlines."""

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.db import AutonomousWebDatabase, FaultPolicy, FaultSpec
from repro.resilience import ResiliencePolicy, RetryConfig, VirtualClock

QUERY = ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)


@pytest.fixture(scope="module")
def car_model(car_table):
    sample = car_table.sample(range(0, len(car_table), 4))
    return build_model_from_sample(
        sample, settings=AIMQSettings(max_relaxation_level=2)
    )


def flaky_webdb(car_table, spec, seed=0):
    return AutonomousWebDatabase(
        car_table, fault_policy=FaultPolicy(spec, seed=seed)
    )


class TestHardOutage:
    def test_plain_engine_returns_structured_empty_answer(
        self, car_model, car_table
    ):
        """A source that is down for good yields a degraded empty answer
        set — never an exception out of ``answer``."""
        webdb = flaky_webdb(car_table, FaultSpec(outages=((0, 10_000),)))
        answers = car_model.engine(webdb).answer(QUERY)
        assert len(answers) == 0
        assert answers.degraded
        report = answers.degradation
        assert any(step.stage == "base_query" for step in report.skipped)
        assert "DEGRADED" in report.summary()

    def test_resilient_engine_exhausts_retries_then_degrades(
        self, car_model, car_table
    ):
        clock = VirtualClock()
        webdb = flaky_webdb(car_table, FaultSpec(outages=((0, 10_000),)))
        engine = car_model.engine(
            webdb,
            resilience=ResiliencePolicy(retry=RetryConfig(max_attempts=3)),
            clock=clock,
        )
        answers = engine.answer(QUERY)
        assert answers.degraded
        assert answers.degradation.retries_used == 2
        assert len(clock.sleeps) == 2  # backoff ran on the virtual clock

    def test_outage_after_mapping_keeps_the_base_set(
        self, car_model, car_table
    ):
        """The source dies right after the base query: every relaxation
        probe is skipped but the base tuples are still ranked answers."""
        webdb = flaky_webdb(car_table, FaultSpec(outages=((1, 10_000),)))
        answers = car_model.engine(webdb).answer(QUERY)
        assert answers.degraded
        assert len(answers) >= 1
        assert all(a.relaxation_level == 0 for a in answers)
        assert any(
            step.stage == "relaxation"
            for step in answers.degradation.skipped
        )


class TestTransientConvergence:
    def test_retries_recover_the_fault_free_answers(
        self, car_model, car_table
    ):
        """A schedule of purely transient faults plus enough retries is
        invisible in the final answers (the acceptance criterion)."""
        clean = car_model.engine(AutonomousWebDatabase(car_table)).answer(
            QUERY, k=10
        )
        flaky = flaky_webdb(
            car_table, FaultSpec(transient_rate=0.3), seed=17
        )
        engine = car_model.engine(
            flaky,
            resilience=ResiliencePolicy(
                retry=RetryConfig(max_attempts=10, seed=17)
            ),
            clock=VirtualClock(),
        )
        healed = engine.answer(QUERY, k=10)
        assert not healed.degraded
        assert healed.row_ids == clean.row_ids
        assert [a.similarity for a in healed] == [
            a.similarity for a in clean
        ]
        assert sum(flaky.fault_policy.injected.values()) > 0

    def test_throttling_is_also_cured(self, car_model, car_table):
        clean = car_model.engine(AutonomousWebDatabase(car_table)).answer(
            QUERY, k=5
        )
        flaky = flaky_webdb(
            car_table, FaultSpec(throttle_rate=0.2), seed=23
        )
        engine = car_model.engine(
            flaky,
            resilience=ResiliencePolicy(
                retry=RetryConfig(max_attempts=10)
            ),
            clock=VirtualClock(),
        )
        healed = engine.answer(QUERY, k=5)
        assert not healed.degraded
        assert healed.row_ids == clean.row_ids


class TestDeadlines:
    def test_probe_deadline_refusal_is_recorded(self, car_model, car_table):
        """Backoff that would blow the per-probe deadline is refused and
        recorded instead of slept through."""
        clock = VirtualClock()
        webdb = flaky_webdb(car_table, FaultSpec(outages=((0, 10_000),)))
        engine = car_model.engine(
            webdb,
            resilience=ResiliencePolicy(
                retry=RetryConfig(
                    max_attempts=5, base_delay=1.0, jitter=0.0
                ),
                probe_deadline_seconds=0.5,
            ),
            clock=clock,
        )
        answers = engine.answer(QUERY)
        assert answers.degraded
        assert answers.degradation.deadline_exceeded
        assert clock.sleeps == []  # the 1.0 s backoff was never affordable

    def test_query_deadline_aborts_the_whole_expansion(
        self, car_model, car_table
    ):
        """Once the per-answer budget is spent, the engine stops
        expanding and returns what it ranked so far."""
        clock = VirtualClock()
        webdb = flaky_webdb(car_table, FaultSpec(outages=((1, 10_000),)))
        engine = car_model.engine(
            webdb,
            resilience=ResiliencePolicy(
                retry=RetryConfig(
                    max_attempts=2, base_delay=2.0, jitter=0.0
                ),
                query_deadline_seconds=3.0,
            ),
            clock=clock,
        )
        answers = engine.answer(QUERY)
        assert answers.degraded
        assert answers.degradation.deadline_exceeded
        assert len(answers) >= 1  # base set survived


class TestGatherSimilar:
    def test_gather_similar_degrades_on_budget_exhaustion(
        self, car_model, car_table
    ):
        limited = AutonomousWebDatabase(car_table, probe_budget=2)
        engine = car_model.engine(limited)
        seed_row = next(iter(car_table.rows()))
        answers, trace = engine.gather_similar(
            seed_row, similarity_threshold=0.4
        )
        assert trace.degraded
        assert trace.degradation.budget_exhausted
        assert isinstance(answers, list)


class TestSummaryText:
    def test_clean_answer_summary(self, car_model, car_table):
        answers = car_model.engine(
            AutonomousWebDatabase(car_table)
        ).answer(QUERY, k=5)
        assert not answers.degraded
        assert "no degradation" in answers.degradation.summary()

    def test_degraded_summary_names_the_error(self, car_model, car_table):
        webdb = flaky_webdb(car_table, FaultSpec(outages=((0, 10_000),)))
        answers = car_model.engine(webdb).answer(QUERY)
        text = answers.degradation.summary()
        assert "DEGRADED" in text
        assert "base_query" in text
