"""Unit tests for feedback events and the log."""

import pytest

from repro.core.query import ImpreciseQuery
from repro.db.errors import QueryError
from repro.feedback.events import FeedbackLog


@pytest.fixture()
def log(toy_schema):
    return FeedbackLog(toy_schema)


def camry_query():
    return ImpreciseQuery.like("Cars", Model="Camry", Price=10000)


class TestFeedbackLog:
    def test_record(self, log):
        event = log.record(camry_query(), ("Toyota", "Camry", 10500, 2001), True)
        assert event.relevant
        assert len(log) == 1

    def test_bindings_only_like_constraints(self, log):
        event = log.record(camry_query(), ("Toyota", "Camry", 10500, 2001), True)
        assert event.bindings() == {"Model": "Camry", "Price": 10000}

    def test_record_validates_query(self, log):
        bad = ImpreciseQuery.like("Cars", Nope="x")
        with pytest.raises(Exception):
            log.record(bad, ("Toyota", "Camry", 1, 2), True)

    def test_record_wrong_relation(self, log):
        bad = ImpreciseQuery.like("Other", Model="Camry")
        with pytest.raises(QueryError):
            log.record(bad, ("Toyota", "Camry", 1, 2), True)

    def test_record_many(self, log):
        n = log.record_many(
            camry_query(),
            [
                (("Toyota", "Camry", 10500, 2001), True),
                (("Ford", "F-150", 21000, 2004), False),
            ],
        )
        assert n == 2
        assert len(log.relevant_events) == 1
        assert len(log.irrelevant_events) == 1

    def test_precision(self, log):
        assert log.precision() == 0.0
        log.record(camry_query(), ("Toyota", "Camry", 1, 2), True)
        log.record(camry_query(), ("Ford", "F-150", 1, 2), False)
        assert log.precision() == 0.5

    def test_iteration(self, log):
        log.record(camry_query(), ("Toyota", "Camry", 1, 2), True)
        assert len(list(log)) == 1
