"""Unit tests for query-driven importance from workloads."""

import pytest

from repro.core.attribute_order import uniform_ordering
from repro.core.query import ImpreciseQuery
from repro.feedback.workload import QueryWorkload, blend_importance


@pytest.fixture()
def workload(toy_schema):
    return QueryWorkload(toy_schema)


class TestQueryWorkload:
    def test_record_and_count(self, workload):
        workload.record(ImpreciseQuery.like("Cars", Model="Camry"))
        workload.record(ImpreciseQuery.like("Cars", Model="Civic", Price=8000))
        assert len(workload) == 2
        assert workload.attribute_frequency("Model") == 2
        assert workload.attribute_frequency("Price") == 1
        assert workload.attribute_frequency("Year") == 0

    def test_record_many(self, workload):
        n = workload.record_many(
            [
                ImpreciseQuery.like("Cars", Make="Ford"),
                ImpreciseQuery.like("Cars", Make="Honda"),
            ]
        )
        assert n == 2

    def test_record_validates(self, workload):
        with pytest.raises(Exception):
            workload.record(ImpreciseQuery.like("Cars", Nope="x"))

    def test_unknown_attribute_frequency_raises(self, workload):
        from repro.db.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            workload.attribute_frequency("Nope")

    def test_empty_workload_uniform(self, workload, toy_schema):
        importance = workload.importance()
        assert all(
            v == pytest.approx(1 / len(toy_schema)) for v in importance.values()
        )

    def test_importance_tracks_frequency(self, workload):
        for _ in range(8):
            workload.record(ImpreciseQuery.like("Cars", Model="Camry"))
        workload.record(ImpreciseQuery.like("Cars", Price=9000))
        importance = workload.importance()
        assert importance["Model"] > importance["Price"] > importance["Year"]
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_smoothing_validation(self, workload):
        with pytest.raises(ValueError):
            workload.importance(smoothing=-1)


class TestBlendImportance:
    def test_alpha_zero_identity(self, workload, toy_schema):
        ordering = uniform_ordering(toy_schema)
        assert blend_importance(ordering, workload, alpha=0.0) is ordering

    def test_alpha_one_pure_workload(self, workload, toy_schema):
        for _ in range(20):
            workload.record(ImpreciseQuery.like("Cars", Model="Camry"))
        ordering = uniform_ordering(toy_schema)
        blended = blend_importance(ordering, workload, alpha=1.0)
        assert blended.importance == pytest.approx(workload.importance())

    def test_blend_moves_toward_workload(self, workload, toy_schema):
        for _ in range(20):
            workload.record(ImpreciseQuery.like("Cars", Model="Camry"))
        ordering = uniform_ordering(toy_schema)
        blended = blend_importance(ordering, workload, alpha=0.5)
        assert (
            ordering.importance["Model"]
            < blended.importance["Model"]
            < workload.importance()["Model"]
        )

    def test_relaxation_order_reflects_blend(self, workload, toy_schema):
        for _ in range(20):
            workload.record(ImpreciseQuery.like("Cars", Model="Camry"))
        blended = blend_importance(
            uniform_ordering(toy_schema), workload, alpha=0.8
        )
        assert blended.relaxation_order[-1] == "Model"

    def test_alpha_validation(self, workload, toy_schema):
        with pytest.raises(ValueError):
            blend_importance(uniform_ordering(toy_schema), workload, alpha=1.5)
