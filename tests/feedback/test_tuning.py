"""Unit tests for feedback-driven tuning of weights and similarities."""

import pytest

from repro.core.attribute_order import uniform_ordering
from repro.core.query import ImpreciseQuery
from repro.feedback.events import FeedbackLog
from repro.feedback.tuning import (
    ImportanceTuner,
    ValueSimilarityTuner,
    retune_ordering,
)
from repro.simmining.estimator import SimilarityModel


def camry_query():
    return ImpreciseQuery.like("Cars", Model="Camry", Price=10000)


class TestRetuneOrdering:
    def test_normalises_and_resorts(self, toy_schema):
        ordering = uniform_ordering(toy_schema)
        retuned = retune_ordering(
            ordering, {"Make": 4.0, "Model": 2.0, "Price": 1.0, "Year": 1.0}
        )
        assert sum(retuned.importance.values()) == pytest.approx(1.0)
        assert retuned.relaxation_order[-1] == "Make"
        assert retuned.importance["Make"] == pytest.approx(0.5)

    def test_zero_mass_rejected(self, toy_schema):
        ordering = uniform_ordering(toy_schema)
        with pytest.raises(ValueError):
            retune_ordering(ordering, {name: 0.0 for name in ordering.importance})

    def test_ties_keep_original_positions(self, toy_schema):
        ordering = uniform_ordering(toy_schema)
        retuned = retune_ordering(
            ordering, dict.fromkeys(ordering.importance, 1.0)
        )
        assert retuned.relaxation_order == ordering.relaxation_order


class TestImportanceTuner:
    def test_validation(self, toy_schema):
        with pytest.raises(ValueError):
            ImportanceTuner(toy_schema, learning_rate=0.0)
        with pytest.raises(ValueError):
            ImportanceTuner(toy_schema, weight_floor=-1)

    def test_relevant_mismatch_lowers_weight(self, toy_schema):
        """User accepts answers with the wrong Model: Model importance
        should fall relative to Price."""
        log = FeedbackLog(toy_schema)
        for _ in range(10):
            log.record(camry_query(), ("Honda", "Accord", 10000, 2001), True)
        tuner = ImportanceTuner(toy_schema, learning_rate=0.2)
        ordering = uniform_ordering(toy_schema)
        tuned = tuner.tune(ordering, log)
        assert tuned.importance["Model"] < tuned.importance["Price"]

    def test_irrelevant_match_lowers_weight(self, toy_schema):
        """User rejects answers that match Model but miss on Price:
        Price gains importance over Model."""
        log = FeedbackLog(toy_schema)
        for _ in range(10):
            log.record(camry_query(), ("Toyota", "Camry", 25000, 2004), False)
        tuner = ImportanceTuner(toy_schema, learning_rate=0.2)
        tuned = tuner.tune(uniform_ordering(toy_schema), log)
        assert tuned.importance["Price"] > tuned.importance["Model"]

    def test_empty_log_is_identity_up_to_normalisation(self, toy_schema):
        ordering = uniform_ordering(toy_schema)
        tuned = ImportanceTuner(toy_schema).tune(ordering, FeedbackLog(toy_schema))
        assert tuned.importance == pytest.approx(ordering.importance)

    def test_weights_stay_positive(self, toy_schema):
        log = FeedbackLog(toy_schema)
        for _ in range(200):
            log.record(camry_query(), ("Honda", "Accord", 10000, 2001), True)
        tuned = ImportanceTuner(toy_schema, learning_rate=0.5).tune(
            uniform_ordering(toy_schema), log
        )
        assert all(w > 0 for w in tuned.importance.values())
        assert sum(tuned.importance.values()) == pytest.approx(1.0)

    def test_uses_vsim_for_agreement_when_given(self, toy_schema):
        similarity = SimilarityModel(["Make", "Model"])
        similarity.record("Model", "Camry", "Accord", 0.9)
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Honda", "Accord", 25000, 2001), False)
        tuner = ImportanceTuner(toy_schema, learning_rate=0.2)
        with_vsim = tuner.tune(
            uniform_ordering(toy_schema), log, value_similarity=similarity
        )
        without = tuner.tune(uniform_ordering(toy_schema), log)
        # With VSim, Accord nearly agrees with Camry, so the blame for
        # irrelevance shifts harder onto Price than without VSim.
        assert with_vsim.importance["Price"] > without.importance["Price"]


class TestValueSimilarityTuner:
    def make_model(self) -> SimilarityModel:
        model = SimilarityModel(["Make", "Model"])
        model.record("Model", "Camry", "Accord", 0.5)
        model.register_value("Model", "F-150")
        return model

    def test_validation(self, toy_schema):
        with pytest.raises(ValueError):
            ValueSimilarityTuner(toy_schema, learning_rate=2.0)

    def test_relevant_pulls_pair_closer(self, toy_schema):
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Honda", "Accord", 10000, 2001), True)
        tuned = ValueSimilarityTuner(toy_schema, learning_rate=0.2).tune(
            self.make_model(), log
        )
        assert tuned.similarity("Model", "Camry", "Accord") == pytest.approx(0.6)

    def test_irrelevant_pushes_pair_apart(self, toy_schema):
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Honda", "Accord", 10000, 2001), False)
        tuned = ValueSimilarityTuner(toy_schema, learning_rate=0.2).tune(
            self.make_model(), log
        )
        assert tuned.similarity("Model", "Camry", "Accord") == pytest.approx(0.4)

    def test_original_model_untouched(self, toy_schema):
        model = self.make_model()
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Honda", "Accord", 10000, 2001), True)
        ValueSimilarityTuner(toy_schema).tune(model, log)
        assert model.similarity("Model", "Camry", "Accord") == pytest.approx(0.5)

    def test_exact_match_not_tuned(self, toy_schema):
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Toyota", "Camry", 10000, 2001), True)
        tuned = ValueSimilarityTuner(toy_schema).tune(self.make_model(), log)
        assert tuned.pairs("Model") == self.make_model().pairs("Model")

    def test_numeric_attributes_ignored(self, toy_schema):
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Honda", "Accord", 99999, 2001), True)
        tuned = ValueSimilarityTuner(toy_schema).tune(self.make_model(), log)
        # Only the Model pair moved; no numeric "pair" was invented.
        assert set(tuned.attributes) == {"Make", "Model"}

    def test_unseen_pair_learns_from_zero(self, toy_schema):
        log = FeedbackLog(toy_schema)
        log.record(camry_query(), ("Ford", "F-150", 10000, 2001), True)
        tuned = ValueSimilarityTuner(toy_schema, learning_rate=0.3).tune(
            self.make_model(), log
        )
        assert tuned.similarity("Model", "Camry", "F-150") == pytest.approx(0.3)
