"""Serving chaos: concurrent sessions, seeded faults, shed-before-collapse.

Deterministic chaos, same doctrine as ``tests/resilience/test_chaos``:
fault schedules are seeded, retry backoff runs on a shared VirtualClock
(sleeps are recorded, never slept), and every assertion is about the
overload contract — requests either answer (possibly degraded) or shed
with 429; the structured-500 path stays cold.
"""

import json
import threading

import pytest

from repro.db import FaultPolicy, FaultSpec
from repro.resilience import VirtualClock
from repro.serve import AdmissionController, Router

from tests.serve.conftest import base_serve_config

pytestmark = pytest.mark.chaos

QUERY_PARAMS = {"c": ["Make=Ford"], "k": ["5"]}


def make_router(serve_state, clock, **overrides):
    config = base_serve_config(**overrides)
    admission = AdmissionController(config, clock=clock)
    return Router(serve_state, admission, config, clock=clock)


def hammer(router, threads, requests_per_thread=1):
    """Fire concurrent sessions; collect (status, payload) pairs."""
    results = []
    lock = threading.Lock()

    def worker():
        for _ in range(requests_per_thread):
            response = router.route("GET", "/query", QUERY_PARAMS)
            payload = json.loads(response.body.decode("utf-8"))
            with lock:
                results.append((response.status, payload))

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in pool)
    return results


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_concurrent_sessions_under_faults_answer_or_shed(serve_state, seed):
    webdb = serve_state.current().webdb
    clock = VirtualClock()
    router = make_router(serve_state, clock, max_inflight=4, max_queue=0)
    webdb.set_fault_policy(
        FaultPolicy(FaultSpec(transient_rate=0.2), seed=seed)
    )
    try:
        results = hammer(router, threads=8)
    finally:
        webdb.set_fault_policy(None)
    statuses = [status for status, _ in results]
    assert len(statuses) == 8
    # The overload contract: answers or sheds, never a 5xx.
    assert set(statuses) <= {200, 429}
    assert statuses.count(200) >= 1
    snapshot = router.admission.snapshot()
    assert snapshot["inflight"] == 0
    assert snapshot["admitted_total"] == statuses.count(200)
    assert snapshot["shed_total"] == statuses.count(429)


def test_shed_before_collapse_under_burst(serve_state):
    clock = VirtualClock()
    router = make_router(serve_state, clock, max_inflight=2, max_queue=0)
    results = hammer(router, threads=10)
    statuses = [status for status, _ in results]
    assert set(statuses) <= {200, 429}
    shed = [payload for status, payload in results if status == 429]
    for payload in shed:
        assert payload["reason"] == "queue_full"
        assert payload["retry_after_seconds"] > 0
    assert router.admission.snapshot()["inflight"] == 0


def test_answers_stay_identical_across_fault_free_concurrency(serve_state):
    clock = VirtualClock()
    router = make_router(serve_state, clock, max_inflight=16, max_queue=0)
    results = hammer(router, threads=6)
    payloads = []
    for status, payload in results:
        assert status == 200
        payload.pop("trace_id")
        payloads.append(payload)
    # Same query, same model, no faults: every concurrent session gets
    # the same rows in the same order with the same probe accounting.
    for payload in payloads[1:]:
        assert payload == payloads[0]
    assert payloads[0]["degraded"] is False


def test_draining_router_sheds_while_inflight_finishes(serve_state):
    clock = VirtualClock()
    router = make_router(serve_state, clock, max_inflight=4, max_queue=0)
    assert router.admission.admit().admitted  # one request "in flight"
    router.admission.start_drain()
    response = router.route("GET", "/query", QUERY_PARAMS)
    assert response.status == 429
    payload = json.loads(response.body.decode("utf-8"))
    assert payload["reason"] == "draining"
    router.admission.release()
    assert router.admission.await_idle(timeout_seconds=0.0)


def test_faulty_source_degrades_payload_not_status(serve_state):
    webdb = serve_state.current().webdb
    clock = VirtualClock()
    router = make_router(serve_state, clock, max_inflight=4, max_queue=0)
    # Heavy transient faults: retries will exhaust on some probes and
    # the engine must degrade into a partial answer, not an error.
    webdb.set_fault_policy(
        FaultPolicy(FaultSpec(transient_rate=0.6), seed=13)
    )
    try:
        response = router.route("GET", "/query", QUERY_PARAMS)
    finally:
        webdb.set_fault_policy(None)
    assert response.status == 200
    payload = json.loads(response.body.decode("utf-8"))
    assert payload["degraded"] is True
    assert payload["degradation"]["steps_skipped"] > 0
    assert payload["degradation"]["retries_used"] > 0
    # Backoff ran on the virtual clock — recorded, never slept.
    assert clock.sleeps
