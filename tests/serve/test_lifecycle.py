"""Graceful drain: SIGTERM-shaped shutdown driven by a VirtualClock."""

import json

from repro.obs import OBS
from repro.resilience import VirtualClock
from repro.serve import AdmissionController, LifecycleController

from tests.serve.conftest import base_serve_config


def make_lifecycle(clock=None, **overrides):
    config = base_serve_config(**overrides)
    admission = AdmissionController(config, clock=clock or VirtualClock())
    return LifecycleController(admission, config), admission


class TestDrainProtocol:
    def test_shutdown_stops_admission_immediately(self):
        lifecycle, admission = make_lifecycle()
        lifecycle.request_shutdown(reason="SIGTERM")
        assert lifecycle.shutdown_requested.is_set()
        decision = admission.admit()
        assert not decision.admitted
        assert decision.reason == "draining"

    def test_drain_completes_once_inflight_work_finishes(self):
        lifecycle, admission = make_lifecycle()
        assert admission.admit().admitted
        admission.release()
        lifecycle.request_shutdown(reason="SIGTERM")
        assert lifecycle.drain() is True
        assert lifecycle.drained is True

    def test_drain_deadline_cuts_the_wait_short(self):
        lifecycle, admission = make_lifecycle(drain_seconds=0.0)
        assert admission.admit().admitted  # never released
        lifecycle.request_shutdown(reason="SIGTERM")
        assert lifecycle.drain() is False
        assert lifecycle.drained is False

    def test_request_shutdown_is_idempotent(self):
        lifecycle, admission = make_lifecycle()
        lifecycle.request_shutdown(reason="SIGTERM")
        lifecycle.request_shutdown(reason="SIGINT")
        assert admission.snapshot()["draining"] is True


class TestFinalEvent:
    def test_drain_emits_the_final_wide_event(self, obs_serving):
        lifecycle, admission = make_lifecycle()
        admission.admit()
        admission.admit()
        admission.release()
        admission.release()
        admission.start_drain()
        admission.admit()  # shed while draining
        lifecycle.request_shutdown(reason="SIGTERM")
        assert lifecycle.drain() is True
        events = [
            e for e in OBS.events.events() if e["event"] == "serve.drain"
        ]
        assert len(events) == 1
        record = events[0]
        assert record["reason"] == "SIGTERM"
        assert record["drained"] is True
        assert record["inflight_at_deadline"] == 0
        assert record["admitted_total"] == 2
        assert record["shed_total"] == 1

    def test_drain_flushes_events_to_the_configured_sink(
        self, obs_serving, tmp_path
    ):
        out = tmp_path / "events.jsonl"
        lifecycle, admission = make_lifecycle(events_out=str(out))
        admission.admit()
        admission.release()
        lifecycle.request_shutdown(reason="SIGTERM")
        assert lifecycle.drain() is True
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines, "no events flushed"
        names = [json.loads(line)["event"] for line in lines]
        assert "serve.drain" in names
