"""Serving test fixtures: one shared model state, per-test routers.

The mined state is expensive, so it is built once per session with the
probe cache off — the configuration under which served answers are
payload-identical to the cache-less CLI path.  Each test then wires its
own admission controller/router over that shared state, usually on a
:class:`~repro.resilience.clock.VirtualClock` so nothing really sleeps.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import OBS
from repro.serve import AdmissionController, Router, ServeConfig, ServeState


def base_serve_config(**overrides: object) -> ServeConfig:
    defaults: dict[str, object] = dict(
        dataset="cardb",
        rows=300,
        sample=120,
        seed=7,
        probe_cache_capacity=0,
        queue_wait_seconds=0.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)  # type: ignore[arg-type]


@pytest.fixture(scope="session")
def serve_config() -> ServeConfig:
    return base_serve_config()


@pytest.fixture(scope="session")
def serve_state(serve_config: ServeConfig) -> ServeState:
    return ServeState.load(serve_config)


@pytest.fixture()
def make_router(serve_state, serve_config):
    """Build a router over the shared state with per-test knobs."""

    def _make(clock=None, **overrides):
        config = (
            dataclasses.replace(serve_config, **overrides)
            if overrides
            else serve_config
        )
        admission = AdmissionController(config, clock=clock)
        return Router(serve_state, admission, config, clock=clock)

    return _make


@pytest.fixture()
def obs_serving():
    """Metrics + wide events on, isolated, restored afterwards."""
    saved = (OBS.enabled, OBS.events.enabled)
    OBS.reset()
    OBS.enable()
    OBS.events.enabled = True
    try:
        yield OBS
    finally:
        OBS.enabled, OBS.events.enabled = saved
        OBS.reset()
