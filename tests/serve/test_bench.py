"""The ``serve_load`` scenario: registration, shape, and contracts.

Speedup magnitude is a bench concern (gated in CI against the
committed baseline); here we pin what must hold at *any* scale — the
equivalence verdict, the overload contract, and the reported shape.
"""

import repro.serve  # noqa: F401 — registers the scenario on import
from repro.perf.bench import SCENARIOS, BenchScale, _Fixture
from repro.serve.bench import bench_serve_load


def tiny_scale():
    return BenchScale(
        rows=300,
        sample=120,
        repeats=1,
        queries=2,
        mining_rows=100,
        mining_values=10,
        mining_attributes=3,
        mining_threshold=0.5,
        candidates=100,
        top_k=5,
        score_rows=50,
        score_repeats=1,
        partition_rows=100,
        partition_products=2,
        serve_clients=4,
        serve_requests=8,
    )


def test_scenario_registered_by_serve_import():
    assert SCENARIOS["serve_load"] is bench_serve_load


def test_serve_load_upholds_the_serving_contract():
    scale = tiny_scale()
    result = bench_serve_load(scale, _Fixture(scale))
    assert result.name == "serve_load"
    assert result.slow_seconds > 0 and result.fast_seconds > 0
    # Equivalent folds in three contracts: identical client-visible
    # answers across both arms, every request answered (no 5xx), and
    # the overload leg shedding with 429 + Retry-After.
    assert result.equivalent
    details = result.details
    assert details["clients"] == scale.serve_clients
    assert details["requests"] == scale.serve_requests
    assert details["p50_ms"] <= details["p95_ms"] <= details["p99_ms"]
    assert 0.0 <= details["cache_hit_rate"] <= 1.0
    assert details["cache_hits"] > 0
    assert details["degraded_count"] == 0
    overload = details["overload"]
    assert overload["contract_held"]
    assert overload["shed"] == scale.serve_clients
    assert overload["shed_with_retry_after"]
    assert overload["recovered_status"] == 200
