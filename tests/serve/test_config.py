"""ServeConfig validation: a bad knob-set refuses to construct."""

import dataclasses

import pytest

from repro.serve import ServeConfig

from tests.serve.conftest import base_serve_config


def test_defaults_construct():
    config = ServeConfig()
    assert config.max_inflight == 8
    assert config.pressure_threshold == 0.75


@pytest.mark.parametrize(
    "overrides",
    [
        {"dataset": "moviedb"},
        {"rows": 0},
        {"sample": 0},
        {"probe_cache_capacity": -1},
        {"default_k": 0},
        {"max_k": 1, "default_k": 10},
        {"frontier": "wavefront"},
        {"batch_workers": 0},
        {"max_inflight": 0},
        {"max_queue": -1},
        {"queue_wait_seconds": -0.1},
        {"rate": -1.0},
        {"burst": 0},
        {"retry_after_seconds": 0.0},
        {"pressure_threshold": 0.0},
        {"pressure_threshold": 1.5},
        {"query_deadline_seconds": 0.0},
        {"pressured_deadline_seconds": 0.0},
        {"pressured_probe_cap": 0},
        {"drain_seconds": -1.0},
    ],
)
def test_bad_knobs_are_rejected(overrides):
    with pytest.raises(ValueError):
        base_serve_config(**overrides)


def test_config_is_frozen():
    config = ServeConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.max_inflight = 99  # type: ignore[misc]
