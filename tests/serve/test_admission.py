"""Admission control: token bucket, bounded queue, shedding, drain.

All deterministic — the controller runs on a VirtualClock, so token
refills and queue deadlines move only when the test advances time.
"""

import threading
import time

import pytest

from repro.resilience import VirtualClock
from repro.serve import AdmissionController
from repro.serve.admission import (
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    SHED_THROTTLED,
)

from tests.serve.conftest import base_serve_config


def controller(clock=None, **overrides):
    return AdmissionController(
        base_serve_config(**overrides), clock=clock or VirtualClock()
    )


def wait_until_queued(admission, depth=1, timeout=5.0):
    """Spin (briefly) until ``depth`` requests are parked in the queue."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if admission.snapshot()["queued"] >= depth:
            return
        time.sleep(0.001)
    raise AssertionError(f"no request reached queue depth {depth}")


class TestSlots:
    def test_admits_until_max_inflight_then_sheds(self):
        admission = controller(max_inflight=2, max_queue=0)
        first = admission.admit()
        second = admission.admit()
        assert first.admitted and second.admitted
        third = admission.admit()
        assert not third.admitted
        assert third.reason == SHED_QUEUE_FULL
        assert third.retry_after_seconds > 0

    def test_release_frees_a_slot(self):
        admission = controller(max_inflight=1, max_queue=0)
        assert admission.admit().admitted
        assert not admission.admit().admitted
        admission.release()
        assert admission.admit().admitted

    def test_pressure_reflects_inflight_utilisation(self):
        admission = controller(max_inflight=4, max_queue=0)
        pressures = [admission.admit().pressure for _ in range(4)]
        assert pressures == [0.25, 0.5, 0.75, 1.0]

    def test_counters_add_up(self):
        admission = controller(max_inflight=1, max_queue=0)
        admission.admit()
        admission.admit()
        admission.admit()
        snapshot = admission.snapshot()
        assert snapshot["admitted_total"] == 1
        assert snapshot["shed_total"] == 2
        assert snapshot["shed_by_reason"] == {SHED_QUEUE_FULL: 2}


class TestTokenBucket:
    def test_throttles_past_burst_and_refills_with_time(self):
        clock = VirtualClock()
        admission = controller(
            clock=clock, rate=1.0, burst=2, max_inflight=8, max_queue=0
        )
        assert admission.admit().admitted
        assert admission.admit().admitted
        throttled = admission.admit()
        assert not throttled.admitted
        assert throttled.reason == SHED_THROTTLED
        clock.advance(1.0)
        assert admission.admit().admitted

    def test_throttle_retry_after_covers_the_token_deficit(self):
        clock = VirtualClock()
        admission = controller(
            clock=clock, rate=0.5, burst=1, max_inflight=8, max_queue=0
        )
        admission.admit()
        shed = admission.admit()
        assert not shed.admitted
        # One token at rate 0.5/s is two seconds away.
        assert shed.retry_after_seconds == pytest.approx(2.0)

    def test_rate_zero_never_throttles(self):
        admission = controller(rate=0.0, max_inflight=8, max_queue=0)
        assert all(admission.admit().admitted for _ in range(8))


class TestQueue:
    def test_queued_request_admitted_when_slot_frees(self):
        admission = controller(
            clock=VirtualClock(),
            max_inflight=1,
            max_queue=4,
            queue_wait_seconds=60.0,
        )
        assert admission.admit().admitted
        decisions = []

        def queued():
            decisions.append(admission.admit())

        waiter = threading.Thread(target=queued)
        waiter.start()
        wait_until_queued(admission)
        admission.release()
        waiter.join(timeout=5)
        assert not waiter.is_alive()
        assert decisions and decisions[0].admitted

    def test_queue_depth_beyond_max_queue_sheds_immediately(self):
        admission = controller(
            clock=VirtualClock(),
            max_inflight=1,
            max_queue=1,
            queue_wait_seconds=60.0,
        )
        assert admission.admit().admitted
        parked = threading.Thread(target=admission.admit)
        parked.start()
        wait_until_queued(admission)
        overflow = admission.admit()
        assert not overflow.admitted
        assert overflow.reason == SHED_QUEUE_FULL
        admission.start_drain()
        parked.join(timeout=5)
        assert not parked.is_alive()


class TestDrain:
    def test_draining_sheds_new_arrivals(self):
        admission = controller(max_inflight=2, max_queue=0)
        admission.start_drain()
        decision = admission.admit()
        assert not decision.admitted
        assert decision.reason == SHED_DRAINING

    def test_drain_wakes_queued_requests_to_shed(self):
        admission = controller(
            clock=VirtualClock(),
            max_inflight=1,
            max_queue=4,
            queue_wait_seconds=60.0,
        )
        assert admission.admit().admitted
        decisions = []
        waiter = threading.Thread(
            target=lambda: decisions.append(admission.admit())
        )
        waiter.start()
        wait_until_queued(admission)
        admission.start_drain()
        waiter.join(timeout=5)
        assert not waiter.is_alive()
        assert decisions and not decisions[0].admitted
        assert decisions[0].reason == SHED_DRAINING

    def test_await_idle_true_once_all_slots_released(self):
        admission = controller(max_inflight=2, max_queue=0)
        admission.admit()
        admission.admit()
        admission.release()
        admission.release()
        assert admission.await_idle(timeout_seconds=0.0)

    def test_await_idle_false_at_deadline_with_inflight_work(self):
        admission = controller(max_inflight=1, max_queue=0)
        admission.admit()
        assert not admission.await_idle(timeout_seconds=0.0)
