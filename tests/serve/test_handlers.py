"""Router endpoints: bit-identity with the CLI path, staged degradation.

The headline test proves the serving contract: the JSON a ``/query``
response carries is **equal** to :func:`repro.serve.answer_payload`
applied to the AnswerSet the one-shot CLI construction produces for the
same query — rows, ranked order, every trace counter and every
degradation flag.
"""

import json
import random

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model
from repro.core.query import ImpreciseQuery
from repro.datasets.cardb import cardb_webdb
from repro.obs import OBS
from repro.resilience import ResiliencePolicy
from repro.serve import answer_payload


def get_json(response):
    return json.loads(response.body.decode("utf-8"))


class TestProbes:
    def test_healthz_always_ok(self, make_router):
        response = make_router().route("GET", "/healthz")
        assert response.status == 200
        assert response.body == b"ok\n"

    def test_readyz_ok_when_loaded(self, make_router):
        response = make_router().route("GET", "/readyz")
        assert response.status == 200
        assert get_json(response) == {"ready": True}

    def test_readyz_503_while_draining(self, make_router):
        router = make_router()
        router.admission.start_drain()
        response = router.route("GET", "/readyz")
        assert response.status == 503
        assert get_json(response)["reason"] == "draining"

    def test_unknown_route_is_404(self, make_router):
        assert make_router().route("GET", "/nope").status == 404


class TestQueryBitIdentity:
    def test_served_answer_equals_cli_path_answer(
        self, make_router, serve_config
    ):
        # The CLI construction (`repro query cardb --resilient ...`),
        # rebuilt from scratch with the server's knobs.
        webdb = cardb_webdb(serve_config.rows, seed=serve_config.seed)
        model = build_model(
            webdb,
            sample_size=serve_config.sample,
            rng=random.Random(serve_config.seed + 1),
            settings=AIMQSettings(max_relaxation_level=3),
        )
        engine = model.engine(webdb, resilience=ResiliencePolicy())
        query = ImpreciseQuery.like("CarDB", Make="Ford", Year=2002)
        expected = answer_payload(engine.answer(query, k=8))

        response = make_router().route(
            "GET", "/query", {"c": ["Make=Ford", "Year=2002"], "k": ["8"]}
        )
        assert response.status == 200
        served = get_json(response)
        served.pop("trace_id")
        served.pop("budgets")
        # Bit-identical: rows, order, similarities, trace counters
        # (probe accounting) and degradation flags all match exactly.
        assert served == json.loads(json.dumps(expected))
        assert expected["answers"], "reference query answered nothing"

    def test_get_and_post_produce_the_same_payload(self, make_router):
        router = make_router()
        via_get = get_json(
            router.route("GET", "/query", {"c": ["Make=Ford"], "k": ["5"]})
        )
        body = json.dumps({"constraints": {"Make": "Ford"}, "k": 5}).encode()
        via_post = get_json(router.route("POST", "/query", {}, body))
        via_get.pop("trace_id")
        via_post.pop("trace_id")
        assert via_get == via_post


class TestQueryValidation:
    def test_malformed_constraint_is_400(self, make_router):
        response = make_router().route("GET", "/query", {"c": ["oops"]})
        assert response.status == 400
        assert "Attribute=Value" in get_json(response)["error"]

    def test_missing_constraints_is_400(self, make_router):
        assert make_router().route("GET", "/query").status == 400

    def test_text_and_constraints_together_is_400(self, make_router):
        response = make_router().route(
            "GET", "/query", {"c": ["Make=Ford"], "text": ["Make like Ford"]}
        )
        assert response.status == 400

    def test_k_beyond_max_is_400(self, make_router):
        response = make_router().route(
            "GET", "/query", {"c": ["Make=Ford"], "k": ["100000"]}
        )
        assert response.status == 400

    def test_bad_json_body_is_400(self, make_router):
        response = make_router().route("POST", "/query", {}, b"{nope")
        assert response.status == 400

    def test_text_query_parses_like_the_cli(self, make_router):
        response = make_router().route(
            "GET", "/query", {"text": ["Make like Ford"], "k": ["3"]}
        )
        assert response.status == 200
        assert get_json(response)["query"] == "CarDB(Make like 'Ford')"


class TestOverload:
    def test_full_server_sheds_with_retry_after(self, make_router):
        router = make_router(max_inflight=1, max_queue=0)
        # Occupy the only slot from the outside.
        assert router.admission.admit().admitted
        response = router.route("GET", "/query", {"c": ["Make=Ford"]})
        assert response.status == 429
        assert int(response.headers["Retry-After"]) >= 1
        assert get_json(response)["reason"] == "queue_full"
        router.admission.release()

    def test_draining_server_sheds_new_queries(self, make_router):
        router = make_router()
        router.admission.start_drain()
        response = router.route("GET", "/query", {"c": ["Make=Ford"]})
        assert response.status == 429
        assert get_json(response)["reason"] == "draining"

    def test_pressured_request_degrades_not_errors(self, make_router):
        # One slot and a low threshold: the only admitted request sees
        # pressure 1.0 and runs under the shrunken budgets.  The probe
        # cap is far below what the query needs, so the answer comes
        # back partial — degraded, never a 5xx.
        router = make_router(
            max_inflight=1,
            pressure_threshold=0.5,
            pressured_probe_cap=30,
            pressured_deadline_seconds=60.0,
        )
        response = router.route("GET", "/query", {"c": ["Make=Ford"], "k": ["8"]})
        assert response.status == 200
        payload = get_json(response)
        assert payload["budgets"] == {
            "pressured": True,
            "query_deadline_seconds": 60.0,
            "probe_cap": 30,
        }
        assert payload["degraded"] is True
        assert payload["degradation"]["budget_exhausted"] is True
        # The slot was released on the way out.
        assert router.admission.snapshot()["inflight"] == 0

    def test_slot_released_even_when_answering_raises(self, make_router):
        router = make_router()
        for params in ({"c": ["Make=Ford"]}, {"c": ["oops"]}):
            router.route("GET", "/query", params)
        assert router.admission.snapshot()["inflight"] == 0


class TestIntrospection:
    def test_stats_reports_all_sections(self, make_router):
        router = make_router()
        router.route("GET", "/query", {"c": ["Make=Ford"]})
        payload = get_json(router.route("GET", "/stats"))
        assert payload["admission"]["admitted_total"] == 1
        assert payload["state"]["ready"] is True
        assert payload["state"]["relation"] == "CarDB"
        assert payload["source"]["probes_issued"] > 0

    def test_metrics_exposes_serve_families(self, make_router, obs_serving):
        from repro.serve import preregister_serve_metrics

        preregister_serve_metrics()
        router = make_router()
        router.route("GET", "/query", {"c": ["Make=Ford"]})
        response = router.route("GET", "/metrics")
        assert response.status == 200
        text = response.body.decode("utf-8")
        assert text.endswith("# EOF\n")
        for family in (
            "repro_serve_requests_total",
            "repro_serve_shed_total",
            "repro_serve_inflight_count",
            "repro_serve_queue_depth_count",
            "repro_serve_request_seconds",
        ):
            assert f"# TYPE {family}" in text, family

    def test_trace_id_propagates_to_payload_header_and_event(
        self, make_router, obs_serving
    ):
        router = make_router()
        response = router.route("GET", "/query", {"c": ["Make=Ford"]})
        payload = get_json(response)
        trace_id = payload["trace_id"]
        assert trace_id
        assert response.headers["X-Trace-Id"] == trace_id
        events = [
            e for e in OBS.events.events() if e["event"] == "serve.request"
        ]
        assert len(events) == 1
        assert events[0]["trace_id"] == trace_id
        # The engine's own wide event ran inside the request span, so it
        # carries the same trace id.
        engine_events = [
            e for e in OBS.events.events() if e["event"] == "engine.answer"
        ]
        assert engine_events
        assert engine_events[0]["trace_id"] == trace_id


@pytest.mark.parametrize(
    "raw,expected",
    [("2002", 2002), ("1.5", 1.5), ("Ford", "Ford")],
)
def test_constraint_coercion_matches_cli(raw, expected):
    from repro.serve.handlers import coerce_value

    assert coerce_value(raw) == expected
