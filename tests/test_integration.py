"""End-to-end integration tests: the full AIMQ story on both datasets."""

import random

import pytest

from repro import (
    AIMQSettings,
    ImpreciseQuery,
    build_model,
    build_model_from_sample,
)
from repro.core.relaxation import GuidedRelax, RandomRelax
from repro.datasets.cardb import generate_cardb
from repro.datasets.census import generate_censusdb
from repro.db.webdb import AutonomousWebDatabase
from repro.evalx.experiments import census_settings
from repro.rock.answering import RockQueryAnswerer
from repro.rock.clustering import RockConfig
from repro.sampling.collector import nested_samples


@pytest.fixture(scope="module")
def car_setup():
    table = generate_cardb(4000, seed=21)
    webdb = AutonomousWebDatabase(table)
    model = build_model(
        webdb,
        sample_size=1200,
        rng=random.Random(2),
        settings=AIMQSettings(max_relaxation_level=3),
    )
    return table, webdb, model


class TestCarDBEndToEnd:
    def test_motivating_example(self, car_setup):
        """The paper's §1 example: Camrys around $10000, plus lookalikes."""
        table, webdb, model = car_setup
        engine = model.engine(webdb)
        answers = engine.answer(
            ImpreciseQuery.like("CarDB", Model="Camry", Price=10000), k=10
        )
        assert len(answers) >= 3
        models = {answer.row[1] for answer in answers}
        assert "Camry" in models
        # Every answer is at least somewhat similar to the query.
        assert all(answer.similarity > 0.3 for answer in answers)

    def test_answers_ranked_and_scored(self, car_setup):
        table, webdb, model = car_setup
        engine = model.engine(webdb)
        answers = engine.answer(
            ImpreciseQuery.like("CarDB", Make="Ford", Year="2000"), k=10
        )
        sims = [a.similarity for a in answers]
        assert sims == sorted(sims, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in sims)

    def test_offline_models_are_sane(self, car_setup):
        _, _, model = car_setup
        # Model must be a top-importance attribute on CarDB.
        importance = model.ordering.importance
        assert importance["Model"] == max(importance.values())
        # Camry's closest model neighbours should share its segment.
        top = model.value_similarity.top_similar("Model", "Camry", 5)
        assert top, "Camry must have similar models"

    def test_probing_only_access(self, car_setup):
        """The engine never bypasses the web facade."""
        table, webdb, model = car_setup
        webdb.reset_accounting()
        engine = model.engine(webdb)
        engine.answer(ImpreciseQuery.like("CarDB", Model="Civic", Price=8000))
        assert webdb.log.probes_issued > 0

    def test_guided_cheaper_than_random_at_high_threshold(self, car_setup):
        table, webdb, model = car_setup
        rng = random.Random(5)
        query_ids = rng.sample(range(len(table)), 6)
        settings = AIMQSettings(
            max_relaxation_level=6, max_extracted_per_base_tuple=50000
        )

        def total_work(strategy_factory):
            extracted = 0
            for query_id in query_ids:
                engine = model.engine(webdb, strategy=strategy_factory(query_id))
                engine.settings = settings
                _, trace = engine.gather_similar(
                    table.row(query_id),
                    similarity_threshold=0.85,
                    target=15,
                    row_id=query_id,
                )
                extracted += trace.tuples_extracted
            return extracted

        guided = total_work(lambda _: GuidedRelax(model.ordering))
        randomised = total_work(lambda qid: RandomRelax(seed=qid))
        assert guided <= randomised


class TestCensusEndToEnd:
    @pytest.fixture(scope="class")
    def census_setup(self):
        table, labels = generate_censusdb(2500, seed=31)
        webdb = AutonomousWebDatabase(table)
        sample = nested_samples(table, [900], random.Random(3))[900]
        model = build_model_from_sample(
            sample, settings=census_settings(error_threshold=0.3)
        )
        return table, labels, webdb, model

    def test_census_query_answering(self, census_setup):
        """The paper's Q': Education like Bachelors, Hours like 40."""
        table, labels, webdb, model = census_setup
        engine = model.engine(webdb)
        answers = engine.answer(
            ImpreciseQuery.like(
                "CensusDB", **{"Education": "Bachelors", "Hours-per-week": 40}
            ),
            k=10,
        )
        assert len(answers) >= 1
        for answer in answers:
            education = answer.row[table.schema.position("Education")]
            hours = answer.row[table.schema.position("Hours-per-week")]
            # Graded relevance: either same education or close hours.
            assert education == "Bachelors" or abs(hours - 40) <= 20

    def test_same_class_neighbors_beat_chance(self, census_setup):
        """AIMQ's top answers match the query's income class more often
        than the population base rate — the §6.5 premise."""
        table, labels, webdb, model = census_setup
        engine = model.engine(webdb)
        rng = random.Random(7)
        query_ids = rng.sample(range(len(table)), 25)
        hits = total = 0
        for query_id in query_ids:
            answers, _ = engine.gather_similar(
                table.row(query_id),
                similarity_threshold=0.4,
                target=5,
                row_id=query_id,
            )
            for answer in answers[:5]:
                total += 1
                hits += labels[answer.row_id] == labels[query_id]
        base_rate = max(
            labels.count("<=50K"), labels.count(">50K")
        ) / len(labels)
        assert total > 0
        assert hits / total >= base_rate - 0.05


class TestRockComparatorIntegration:
    def test_rock_pipeline_on_cardb(self, car_setup):
        table, _, _ = car_setup
        rock = RockQueryAnswerer(
            table,
            config=RockConfig(theta=0.5, n_clusters=8),
            sample_size=200,
            seed=1,
        ).fit()
        answers = rock.answer_row_id(11, k=10)
        assert 1 <= len(answers) <= 10
        assert rock.timings.total_seconds > 0


class TestRobustnessIntegration:
    def test_ordering_stable_across_nested_samples(self):
        """Fig 3's claim at integration scale: the mined relaxation
        order of the well-separated attributes survives subsampling."""
        table = generate_cardb(4000, seed=33)
        samples = nested_samples(table, [1000, 4000], random.Random(4))
        orders = {}
        for size, sample in samples.items():
            model = build_model_from_sample(sample)
            orders[size] = model.ordering.relaxation_order
        # Model must be most important (last to relax) in both.
        assert orders[1000][-1] == orders[4000][-1] == "Model"
