"""Unit tests for the simulated user panel."""

import pytest

from repro.datasets.cardb import CARDB_SCHEMA
from repro.evalx.userstudy import (
    CarGroundTruth,
    SimulatedUser,
    SimulatedUserPanel,
)


def car(make="Toyota", model="Camry", year="2000", price=10000,
        mileage=60000, location="Phoenix", color="White"):
    return (make, model, year, price, mileage, location, color)


@pytest.fixture()
def ground_truth():
    return CarGroundTruth(CARDB_SCHEMA)


class TestCarGroundTruth:
    def test_identical_car_scores_one(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        assert ground_truth.score(reference, car()) == pytest.approx(1.0)

    def test_same_model_beats_different_model(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        same = ground_truth.score(reference, car(color="Red"))
        different = ground_truth.score(
            reference, car(make="Ford", model="F-150", color="Red")
        )
        assert same > different

    def test_price_closeness_matters(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        close = ground_truth.score(reference, car(price=10500))
        far = ground_truth.score(reference, car(price=25000))
        assert close > far

    def test_year_closeness(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        assert ground_truth.score(reference, car(year="2001")) > ground_truth.score(
            reference, car(year="1990")
        )

    def test_range(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        weird = car(make="BMW", model="540i", year="1985", price=99999,
                    mileage=250000, location="Miami", color="Gold")
        assert 0.0 <= ground_truth.score(reference, weird) <= 1.0

    def test_empty_reference(self, ground_truth):
        assert ground_truth.score({}, car()) == 0.0


class TestSimulatedUser:
    def test_ranks_cover_relevant_answers(self, ground_truth):
        user = SimulatedUser(seed=0, noise_sigma=0.0)
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(), car(price=11000), car(make="BMW", model="540i",
                price=45000, year="2005")]
        ranks = user.rank_answers(ground_truth, reference, rows)
        assert ranks[0] == 1  # identical car ranked first
        positive = [r for r in ranks if r > 0]
        assert sorted(positive) == list(range(1, len(positive) + 1))

    def test_irrelevant_get_zero(self, ground_truth):
        user = SimulatedUser(seed=0, noise_sigma=0.0, relevance_floor=0.9)
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(make="BMW", model="540i", price=45000)]
        assert user.rank_answers(ground_truth, reference, rows) == [0]

    def test_noise_changes_ranks_sometimes(self, ground_truth):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(price=10000 + delta) for delta in (0, 200, 400, 600)]
        outcomes = set()
        for seed in range(10):
            user = SimulatedUser(seed=seed, noise_sigma=0.5)
            outcomes.add(tuple(user.rank_answers(ground_truth, reference, rows)))
        assert len(outcomes) > 1

    def test_per_tuple_noise_is_stable(self, ground_truth):
        """A user judges the same car identically across calls."""
        user = SimulatedUser(seed=4, noise_sigma=0.3)
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(price=10000 + d) for d in (0, 300, 600)]
        first = user.rank_answers(ground_truth, reference, rows)
        second = user.rank_answers(ground_truth, reference, rows)
        assert first == second


class TestPanel:
    def test_panel_size_validated(self):
        with pytest.raises(ValueError):
            SimulatedUserPanel(CARDB_SCHEMA, n_users=0)

    def test_mrr_perfect_system(self):
        panel = SimulatedUserPanel(CARDB_SCHEMA, n_users=4, seed=1,
                                   noise_sigma=0.0)
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(), car(price=10500), car(price=12000)]
        mrr = panel.mrr_for_answers(reference, rows)
        assert mrr == pytest.approx(1.0)

    def test_mrr_empty_answers(self):
        panel = SimulatedUserPanel(CARDB_SCHEMA, n_users=2, seed=1)
        assert panel.mrr_for_answers({}, []) == 0.0

    def test_run_study_shapes(self):
        panel = SimulatedUserPanel(CARDB_SCHEMA, n_users=3, seed=1,
                                   noise_sigma=0.0)
        queries = [CARDB_SCHEMA.row_to_mapping(car())]
        answers = {"sysA": [[car(), car(price=10500)]],
                   "sysB": [[car(make="BMW", model="540i", price=45000)]]}
        outcome = panel.run_study(queries, answers)
        assert set(outcome.system_mrr) == {"sysA", "sysB"}
        assert len(outcome.per_query["sysA"]) == 1
        assert outcome.best_system() == "sysA"

    def test_deterministic_for_seed(self):
        reference = CARDB_SCHEMA.row_to_mapping(car())
        rows = [car(), car(price=11000), car(year="1995")]

        def run():
            panel = SimulatedUserPanel(CARDB_SCHEMA, n_users=4, seed=9)
            return panel.mrr_for_answers(reference, rows)

        assert run() == run()
