"""Smoke/shape tests for the experiment runners (tiny scales).

The benchmarks run these at near-paper scale; here we verify the
plumbing: result shapes, invariants that must hold at any scale, and
reporting round-trips.
"""

import pytest

from repro.evalx.experiments import (
    census_settings,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig8,
    run_fig9,
    run_relaxation_efficiency,
    run_table1,
    run_table2,
    run_table3,
)
from repro.evalx.reporting import (
    format_efficiency,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)


class TestTable1:
    def test_supertuple_rendering(self):
        text = run_table1(car_rows=800)
        assert "Make=Ford" in text
        assert "Model" in text and "Price" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(car_rows=600, census_rows=800, rock_sample=80)

    def test_all_phases_timed(self, result):
        for dataset in ("CarDB", "CensusDB"):
            assert result.aimq_supertuple[dataset] > 0
            assert result.aimq_estimation[dataset] >= 0
            assert result.rock_links[dataset] >= 0
            assert result.rock_labeling[dataset] > 0

    def test_totals(self, result):
        assert result.aimq_total("CarDB") > 0
        assert result.rock_total("CarDB") > 0

    def test_formatting(self, result):
        text = format_table2(result)
        assert "SuperTuple Generation" in text
        assert "Data Labeling" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(car_rows=2500, small_fraction=0.4)

    def test_probes_present(self, result):
        assert ("Make", "Kia") in result.rows
        assert ("Model", "Bronco") in result.rows
        assert ("Year", "1985") in result.rows

    def test_rows_carry_both_scales(self, result):
        for ranked in result.rows.values():
            assert ranked, "each probe needs at least one similar value"
            for _, sim_small, sim_large in ranked:
                assert 0.0 <= sim_small <= 1.0
                assert 0.0 <= sim_large <= 1.0

    def test_large_scores_descending(self, result):
        for ranked in result.rows.values():
            larges = [sim for _, _, sim in ranked]
            assert larges == sorted(larges, reverse=True)

    def test_formatting(self, result):
        assert "Kia" in format_table3(result)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(car_rows=3000, fractions=(0.5, 1.0))

    def test_weights_per_size(self, result):
        assert set(result.weights) == set(result.sizes)
        for weights in result.weights.values():
            assert all(w >= 0 for w in weights.values())

    def test_ordering_helpers(self, result):
        for size in result.sizes:
            ordering = result.ordering_at(size)
            assert set(ordering) == set(result.dependent_attributes)

    def test_orderings_consistent_at_reasonable_scale(self, result):
        assert result.orderings_consistent()

    def test_formatting(self, result):
        assert "Wt_depends" in format_fig3(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(car_rows=3000, fractions=(0.5, 1.0))

    def test_qualities_ascending(self, result):
        for ranked in result.key_quality.values():
            qualities = [q for _, q in ranked]
            assert qualities == sorted(qualities)

    def test_best_key_stable(self, result):
        assert result.best_key_stable()

    def test_formatting(self, result):
        assert "quality" in format_fig4(result)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(car_rows=3000, threshold=0.2)

    def test_ford_has_neighbors(self, result):
        assert result.ford_neighbors
        names = [n for n, _ in result.ford_neighbors]
        assert "Chevrolet" in names

    def test_chevrolet_strongest(self, result):
        assert result.ford_neighbors[0][0] == "Chevrolet"

    def test_bmw_weaker_than_chevrolet(self, result):
        weights = dict(result.ford_neighbors)
        if "BMW" in weights:
            assert weights["BMW"] < weights["Chevrolet"]
        else:
            assert "BMW" in result.disconnected_from_ford

    def test_formatting(self, result):
        assert "Ford" in format_fig5(result)


class TestEfficiency:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            run_relaxation_efficiency("clever")

    @pytest.fixture(scope="class")
    def guided(self):
        return run_relaxation_efficiency(
            "guided", car_rows=2000, sample_rows=600, n_queries=3,
            thresholds=(0.5, 0.8),
        )

    def test_shape(self, guided):
        assert set(guided.work) == {0.5, 0.8}
        assert all(len(v) == 3 for v in guided.per_query.values())

    def test_work_grows_with_threshold(self, guided):
        assert guided.work[0.8] >= guided.work[0.5]

    def test_formatting(self, guided):
        assert "GuidedRelax" in format_efficiency(guided)


class TestFig8:
    def test_study_runs_and_reports(self):
        outcome = run_fig8(
            car_rows=1500, sample_rows=500, n_queries=3, rock_sample=100,
            n_users=3,
        )
        assert set(outcome.system_mrr) == {"GuidedRelax", "RandomRelax", "ROCK"}
        assert all(0 <= v <= 1 for v in outcome.system_mrr.values())
        assert "MRR" in format_fig8(outcome)

    def test_multi_seed_pools_queries(self):
        from repro.evalx.experiments import run_fig8_multi

        outcome = run_fig8_multi(
            seeds=(3, 5),
            car_rows=1200,
            sample_rows=400,
            n_queries=2,
            rock_sample=80,
            n_users=2,
        )
        # 2 seeds x 2 queries pooled per system.
        assert all(len(v) == 4 for v in outcome.per_query.values())
        assert set(outcome.system_mrr) == {"GuidedRelax", "RandomRelax", "ROCK"}


class TestFig9:
    def test_accuracy_shapes(self):
        result = run_fig9(
            census_rows=1200, sample_rows=400, n_queries=12, rock_sample=100,
            ks=(5, 1),
            settings=census_settings(error_threshold=0.3),
        )
        assert set(result.aimq_accuracy) == {5, 1}
        assert all(0 <= v <= 1 for v in result.aimq_accuracy.values())
        assert all(0 <= v <= 1 for v in result.rock_accuracy.values())
        assert "AIMQ" in format_fig9(result)


class TestCensusSettings:
    def test_defaults(self):
        settings = census_settings()
        assert settings.tane.max_lhs_size == 2
        assert settings.max_relaxation_level == 6
        assert settings.tane.numeric_bins == 8
