"""Unit tests for report formatting helpers."""

from repro.core.query import ImpreciseQuery
from repro.core.results import AnswerSet, RelaxationTrace
from repro.db.errors import TransientProbeError
from repro.evalx.experiments import EfficiencyResult, Fig5Result, Fig9Result
from repro.evalx.reporting import (
    _seconds,
    format_degradation,
    format_efficiency,
    format_fig5,
    format_fig9,
)


def _answer_set(trace: RelaxationTrace) -> AnswerSet:
    return AnswerSet(
        query=ImpreciseQuery.like("CarDB", Model="Camry"),
        answers=[],
        trace=trace,
    )


class TestDegradationFormatting:
    def test_clean_answer_renders_empty(self):
        assert format_degradation(_answer_set(RelaxationTrace())) == ""

    def test_degraded_answer_renders_appendix(self):
        trace = RelaxationTrace()
        trace.degradation.record("relaxation", TransientProbeError("blip"))
        text = format_degradation(_answer_set(trace))
        assert text.startswith("Degradation appendix")
        assert "relaxation" in text
        assert "DEGRADED" in text


class TestSecondsFormatting:
    def test_milliseconds(self):
        assert _seconds(0.123) == "123 ms"

    def test_seconds(self):
        assert _seconds(2.5) == "2.50 s"

    def test_minutes(self):
        assert _seconds(180) == "3.0 min"

    def test_boundaries(self):
        assert _seconds(0.9994).endswith("ms")
        assert _seconds(1.0).endswith("s")
        assert _seconds(119.9).endswith("s")
        assert _seconds(120).endswith("min")


class TestEfficiencyFormatting:
    def test_includes_median_column(self):
        result = EfficiencyResult(
            strategy="guided",
            thresholds=[0.5, 0.9],
            work={0.5: 1.5, 0.9: 10.0},
            median_work={0.5: 1.2, 0.9: 4.0},
        )
        text = format_efficiency(result)
        assert "median" in text
        assert "4.00" in text and "10.00" in text

    def test_falls_back_to_mean_without_median(self):
        result = EfficiencyResult(
            strategy="random", thresholds=[0.5], work={0.5: 2.0}
        )
        text = format_efficiency(result)
        assert "RandomRelax" in text
        assert text.count("2.00") == 2


class TestFig5Formatting:
    def test_lists_neighbors_and_isolates(self):
        result = Fig5Result(
            threshold=0.2,
            ford_neighbors=[("Chevrolet", 0.25)],
            edges=[("Chevrolet", "Ford", 0.25)],
            disconnected_from_ford=["BMW"],
        )
        text = format_fig5(result)
        assert "Chevrolet" in text and "BMW" in text and "0.250" in text


class TestFig9Formatting:
    def test_rows_per_k(self):
        result = Fig9Result(
            ks=[5, 1],
            aimq_accuracy={5: 0.7, 1: 0.8},
            rock_accuracy={5: 0.6, 1: 0.65},
            n_queries=10,
        )
        text = format_fig9(result)
        assert "0.700" in text and "0.650" in text
        assert "10 queries" in text
