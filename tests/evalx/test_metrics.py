"""Unit tests for evaluation metrics."""

import pytest

from repro.evalx.metrics import (
    average_mrr,
    paper_mrr,
    rank_agreement,
    top_k_accuracy,
    work_per_relevant,
)


class TestRankAgreement:
    def test_perfect_agreement(self):
        assert rank_agreement(1, 1) == 1.0
        assert rank_agreement(7, 7) == 1.0

    def test_off_by_one(self):
        assert rank_agreement(2, 1) == pytest.approx(0.5)

    def test_symmetric_in_distance(self):
        assert rank_agreement(1, 4) == rank_agreement(7, 4)

    def test_irrelevant_rank_zero(self):
        # The paper's subjects mark irrelevant tuples with rank 0; the
        # formula then punishes high system placement hardest.
        assert rank_agreement(0, 1) == pytest.approx(0.5)
        assert rank_agreement(0, 10) == pytest.approx(1 / 11)

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_agreement(1, 0)
        with pytest.raises(ValueError):
            rank_agreement(-1, 1)


class TestPaperMRR:
    def test_perfect_ranking(self):
        assert paper_mrr([1, 2, 3, 4]) == 1.0

    def test_reversed_ranking(self):
        mrr = paper_mrr([3, 2, 1])
        assert mrr == pytest.approx((1 / 3 + 1 + 1 / 3) / 3)

    def test_all_irrelevant(self):
        mrr = paper_mrr([0, 0])
        assert mrr == pytest.approx((1 / 2 + 1 / 3) / 2)

    def test_empty(self):
        assert paper_mrr([]) == 0.0

    def test_better_agreement_scores_higher(self):
        assert paper_mrr([1, 2, 3]) > paper_mrr([2, 3, 1])


class TestAverageMRR:
    def test_mean(self):
        assert average_mrr([1.0, 0.5]) == pytest.approx(0.75)

    def test_empty(self):
        assert average_mrr([]) == 0.0


class TestTopKAccuracy:
    def test_all_match(self):
        assert top_k_accuracy(["a", "a", "a"], "a", 3) == 1.0

    def test_partial(self):
        assert top_k_accuracy(["a", "b", "a", "b"], "a", 4) == 0.5

    def test_k_smaller_than_answers(self):
        assert top_k_accuracy(["a", "b", "b", "b"], "a", 1) == 1.0

    def test_missing_answers_count_as_misses(self):
        assert top_k_accuracy(["a"], "a", 4) == 0.25

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(["a"], "a", 0)


class TestWorkPerRelevant:
    def test_ratio(self):
        assert work_per_relevant(100, 20) == 5.0

    def test_none_relevant_is_infinite(self):
        assert work_per_relevant(100, 0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            work_per_relevant(-1, 1)
