"""Unit and small-integration tests for the AIMQ engine (Algorithm 1)."""

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.core.relaxation import RandomRelax
from repro.db.errors import QueryError


@pytest.fixture(scope="module")
def car_model(car_table):
    sample = car_table.sample(range(0, len(car_table), 2))
    return build_model_from_sample(
        sample, settings=AIMQSettings(max_relaxation_level=3)
    )


@pytest.fixture(scope="module")
def car_engine(car_model, car_webdb):
    return car_model.engine(car_webdb)


class TestAnswer:
    def test_returns_ranked_answers(self, car_engine, car_webdb):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        answers = car_engine.answer(query, k=10)
        assert 1 <= len(answers) <= 10
        sims = [a.similarity for a in answers]
        assert sims == sorted(sims, reverse=True)

    def test_answers_deduplicated(self, car_engine):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        answers = car_engine.answer(query, k=10)
        assert len(set(answers.row_ids)) == len(answers)

    def test_base_tuples_present(self, car_engine, car_webdb):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        answers = car_engine.answer(query, k=10)
        exact = [
            a
            for a in answers
            if a.relaxation_level == 0 and a.base_similarity == 1.0
        ]
        assert exact, "base-set tuples should surface in the answers"

    def test_trace_counts_work(self, car_engine):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        answers = car_engine.answer(query, k=10)
        trace = answers.trace
        assert trace.base_set_size >= 1
        assert trace.queries_issued > 0
        assert trace.tuples_relevant <= trace.tuples_extracted

    def test_top_k_respected(self, car_engine):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)
        assert len(car_engine.answer(query, k=3)) <= 3

    def test_similarity_threshold_filters(self, car_engine):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        strict = car_engine.answer(query, k=50, similarity_threshold=0.95)
        for answer in strict:
            if answer.relaxation_level > 0:
                assert answer.base_similarity > 0.95

    def test_unsatisfiable_raises(self, car_engine):
        query = ImpreciseQuery.like("CarDB", Model="Batmobile")
        with pytest.raises(QueryError):
            car_engine.answer(query)

    def test_answer_by_example(self, car_engine, car_table):
        example = car_table.schema.row_to_mapping(car_table.row(0))
        answers = car_engine.answer_by_example(example, k=5)
        assert len(answers) >= 1


class TestGatherSimilar:
    def test_excludes_seed_row(self, car_engine, car_table):
        answers, _ = car_engine.gather_similar(
            car_table.row(10), similarity_threshold=0.5, target=10, row_id=10
        )
        assert 10 not in [a.row_id for a in answers]

    def test_ranked_by_base_similarity(self, car_engine, car_table):
        answers, _ = car_engine.gather_similar(
            car_table.row(10), similarity_threshold=0.4, target=20, row_id=10
        )
        sims = [a.base_similarity for a in answers]
        assert sims == sorted(sims, reverse=True)

    def test_all_above_threshold(self, car_engine, car_table):
        answers, _ = car_engine.gather_similar(
            car_table.row(10), similarity_threshold=0.6, target=20, row_id=10
        )
        assert all(a.base_similarity > 0.6 for a in answers)

    def test_trace_reports_work(self, car_engine, car_table):
        _, trace = car_engine.gather_similar(
            car_table.row(10), similarity_threshold=0.5, target=5, row_id=10
        )
        assert trace.tuples_extracted >= trace.tuples_relevant
        assert trace.work_per_relevant_tuple >= 1.0

    def test_quota_limits_relevant(self, car_engine, car_table):
        answers, trace = car_engine.gather_similar(
            car_table.row(10), similarity_threshold=0.3, target=5, row_id=10
        )
        # Quota counts distinct relevant tuples found during expansion.
        assert trace.tuples_relevant <= 5 + 1


class TestRandomStrategyEngine:
    def test_random_engine_answers(self, car_model, car_webdb, car_table):
        engine = car_model.engine(car_webdb, strategy=RandomRelax(seed=5))
        answers, trace = engine.gather_similar(
            car_table.row(3), similarity_threshold=0.5, target=10, row_id=3
        )
        assert trace.queries_issued > 0

    def test_random_engine_via_helper(self, car_model, car_webdb):
        engine = car_model.random_engine(car_webdb, seed=5)
        assert isinstance(engine.strategy, RandomRelax)


class TestTraceMetrics:
    def test_work_per_relevant_infinite_when_none(self):
        from repro.core.results import RelaxationTrace

        trace = RelaxationTrace(tuples_extracted=10, tuples_relevant=0)
        assert trace.work_per_relevant_tuple == float("inf")

    def test_work_per_relevant(self):
        from repro.core.results import RelaxationTrace

        trace = RelaxationTrace(tuples_extracted=10, tuples_relevant=4)
        assert trace.work_per_relevant_tuple == pytest.approx(2.5)
