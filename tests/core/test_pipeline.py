"""Unit tests for the offline build pipeline."""

import random

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model, build_model_from_sample


class TestBuildFromSample:
    @pytest.fixture(scope="class")
    def model(self, car_table):
        sample = car_table.sample(range(0, len(car_table), 3))
        return build_model_from_sample(sample)

    def test_components_present(self, model):
        assert model.dependencies.afds
        assert model.ordering.relaxation_order
        assert model.value_similarity.pair_count() > 0

    def test_ordering_covers_schema(self, model, car_table):
        assert set(model.ordering.relaxation_order) == set(
            car_table.schema.attribute_names
        )

    def test_importance_normalised(self, model):
        assert sum(model.ordering.importance.values()) == pytest.approx(1.0)

    def test_smoothing_applied(self, model):
        # Default smoothing guarantees a weight floor for every attribute.
        floor = 0.3 / len(model.ordering.relaxation_order)
        assert all(
            w >= floor - 1e-12 for w in model.ordering.importance.values()
        )

    def test_timings_recorded(self, model):
        assert model.timings.dependency_mining_seconds > 0
        assert model.timings.supertuple_seconds > 0
        assert model.timings.similarity_estimation_seconds > 0
        assert model.timings.total_seconds >= model.timings.supertuple_seconds

    def test_engine_construction(self, model, car_webdb):
        engine = model.engine(car_webdb)
        assert engine.ordering is model.ordering


class TestBuildViaProbing:
    def test_build_model_probes_source(self, car_webdb):
        car_webdb.reset_accounting()
        model = build_model(car_webdb, sample_size=500, rng=random.Random(3))
        assert len(model.sample) == 500
        assert model.collection_report is not None
        assert car_webdb.log.probes_issued > 0
        assert model.timings.probing_seconds > 0

    def test_spanning_attribute_honoured(self, car_webdb):
        model = build_model(
            car_webdb,
            sample_size=400,
            rng=random.Random(3),
            spanning_attribute="Make",
        )
        assert model.collection_report.spanning_attribute == "Make"

    def test_settings_flow_through(self, car_webdb):
        settings = AIMQSettings(top_k=5)
        model = build_model(
            car_webdb, sample_size=300, rng=random.Random(3), settings=settings
        )
        assert model.settings.top_k == 5

    def test_key_criterion_quality(self, car_webdb):
        model = build_model(
            car_webdb,
            sample_size=400,
            rng=random.Random(3),
            key_criterion="quality",
        )
        assert model.ordering is not None
