"""Unit tests for answer explanations."""

import pytest

from repro.core.attribute_order import uniform_ordering
from repro.core.config import AIMQSettings
from repro.core.explain import explain_answer
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.core.results import RankedAnswer
from repro.core.similarity import TupleSimilarity
from repro.simmining.estimator import SimilarityModel


@pytest.fixture()
def scorer(toy_schema):
    model = SimilarityModel(["Make", "Model"])
    model.record("Model", "Camry", "Accord", 0.8)
    return TupleSimilarity(toy_schema, uniform_ordering(toy_schema), model)


def make_answer(row, level=1, similarity=0.9):
    return RankedAnswer(
        row_id=7,
        row=row,
        similarity=similarity,
        base_similarity=similarity,
        source_base_row_id=3,
        relaxation_level=level,
    )


class TestExplainAnswer:
    def test_contributions_reconstruct_score(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        row = ("Honda", "Accord", 9000, 2001)
        answer = make_answer(row)
        explanation = explain_answer(scorer, query, answer)
        assert explanation.total == pytest.approx(
            scorer.sim_to_query(query, row)
        )

    def test_one_contribution_per_like_constraint(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        explanation = explain_answer(
            scorer, query, make_answer(("Honda", "Accord", 9000, 2001))
        )
        assert {c.attribute for c in explanation.contributions} == {
            "Model",
            "Price",
        }

    def test_matched_flag(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry", Price=9000)
        explanation = explain_answer(
            scorer, query, make_answer(("Toyota", "Camry", 9000, 2001))
        )
        assert all(c.matched for c in explanation.contributions)

    def test_strongest_and_weakest(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        explanation = explain_answer(
            scorer, query, make_answer(("Honda", "Accord", 10000, 2001))
        )
        # Exact price match (sim 1.0) dominates the 0.8 model similarity.
        assert explanation.strongest.attribute == "Price"
        assert explanation.weakest.attribute == "Model"

    def test_describe_mentions_provenance(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry")
        relaxed = explain_answer(
            scorer, query, make_answer(("Honda", "Accord", 1, 2), level=2)
        )
        assert "relaxation depth 2" in relaxed.describe()
        direct = explain_answer(
            scorer, query, make_answer(("Toyota", "Camry", 1, 2), level=0)
        )
        assert "direct match" in direct.describe()

    def test_engine_explain_end_to_end(self, car_table, car_webdb):
        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(
            sample, settings=AIMQSettings(max_relaxation_level=3)
        )
        engine = model.engine(car_webdb)
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=9000)
        answers = engine.answer(query, k=5)
        explanation = engine.explain(query, answers[0])
        assert explanation.total == pytest.approx(answers[0].similarity)
        text = explanation.describe()
        assert "Model" in text and "Price" in text
