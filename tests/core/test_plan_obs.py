"""Cross-layer observability of the answering hot path.

Pins the PR 6 contract: batch-dispatched probe spans nest under the
answering span regardless of which pool thread ran them; resilience
retry spans do too; the single ``engine.answer`` wide event's probe
accounting equals the :class:`RelaxationTrace` and
:class:`~repro.db.ProbeLog` numbers exactly; and turning events and
tracing on never changes an answer bit.
"""

from __future__ import annotations

import random

import pytest

from repro.core import AIMQSettings, ImpreciseQuery, build_model
from repro.core.plan import PlannerConfig
from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.obs import OBS
from repro.resilience import ResiliencePolicy
from repro.resilience.clock import VirtualClock


@pytest.fixture()
def obs_full():
    """Tracing + events on with clean state; everything restored after."""
    OBS.reset()
    OBS.enable()
    OBS.events.enabled = True
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.events.enabled = False
        OBS.events.probe_events = False
        OBS.reset()


def _overlap_webdb(n_rows: int = 300, profiles: int = 6, seed: int = 9):
    """Rows drawn from few profiles: guaranteed cross-tuple reuse."""
    rng = random.Random(seed)
    schema = RelationSchema.build(
        "mini", categorical=("A", "B", "C"), numeric=(), order=("A", "B", "C")
    )
    pool = [
        (f"a{rng.randrange(3)}", f"b{rng.randrange(3)}", f"c{rng.randrange(3)}")
        for _ in range(profiles)
    ]
    table = Table(schema)
    for _ in range(n_rows):
        table.insert(rng.choice(pool))
    return AutonomousWebDatabase(table)


@pytest.fixture(scope="module")
def setup():
    webdb = _overlap_webdb()
    model = build_model(
        webdb,
        sample_size=120,
        rng=random.Random(4),
        settings=AIMQSettings(max_relaxation_level=2),
    )
    webdb.reset_accounting()
    query = ImpreciseQuery.like(webdb.schema.name, A="a1")
    return webdb, model, query


def _sig(answers):
    return [(a.row_id, a.similarity, a.base_similarity) for a in answers]


def _answer_root():
    for root in reversed(OBS.tracer.traces()):
        if root.name == "engine.answer":
            return root
    raise AssertionError("no engine.answer root recorded")


PLANNER = PlannerConfig(frontier="tuple", workers=4)


class TestSpanParentage:
    def test_batch_probe_spans_are_children_of_the_answering_span(
        self, obs_full, setup
    ):
        webdb, model, query = setup
        model.engine(webdb, planner=PLANNER).answer(query)
        root = _answer_root()
        in_tree = [
            span for span in root.walk() if span.name == "plan.batch_probe"
        ]
        assert in_tree, "batched run dispatched no pool probes"
        # Pool threads differ from the answering thread — parentage
        # survived the hop.
        assert any(span.tid != root.tid for span in in_tree)
        assert {span.trace_id for span in in_tree} == {root.trace_id}
        # And none of them leaked into the ring as orphan roots.
        for recorded_root in OBS.tracer.traces():
            assert recorded_root.name != "plan.batch_probe"

    def test_retry_spans_nest_under_the_answering_span(
        self, obs_full, setup
    ):
        webdb, model, query = setup
        webdb.set_fault_policy(
            FaultPolicy(FaultSpec(transient_rate=0.4), seed=5)
        )
        try:
            model.engine(
                webdb, resilience=ResiliencePolicy(), clock=VirtualClock()
            ).answer(query)
        finally:
            webdb.set_fault_policy(None)
        root = _answer_root()
        backoffs = [
            span
            for span in root.walk()
            if span.name == "resilience.backoff"
        ]
        assert backoffs, "fault schedule produced no retries"
        for span in backoffs:
            assert span.trace_id == root.trace_id
            assert span.attributes["attempt"] >= 1
            assert span.attributes["max_attempts"] >= span.attributes["attempt"]
            assert "delay" in span.attributes
            assert "error" in span.attributes


class TestAnswerEvent:
    def test_single_event_with_exact_probe_accounting(
        self, obs_full, setup
    ):
        webdb, model, query = setup
        log_before = webdb.log.snapshot()
        answers = model.engine(webdb, planner=PLANNER).answer(query, k=5)
        events = [
            e for e in OBS.events.events() if e["event"] == "engine.answer"
        ]
        assert len(events) == 1
        (event,) = events
        trace = answers.trace
        assert event["mode"] == "answer"
        assert event["dataset"] == webdb.schema.name
        assert event["k"] == 5
        assert event["answers"] == len(answers)
        assert event["base_set_size"] == trace.base_set_size
        assert event["probes_issued"] == trace.queries_issued
        assert event["probes_cached"] == trace.probes_cached
        assert event["probes_subsumed"] == trace.probes_subsumed
        assert event["probes_speculative"] == trace.probes_speculative
        assert event["logical_probes"] == trace.logical_probes
        assert event["logical_probes"] == (
            event["probes_issued"]
            + event["probes_cached"]
            + event["probes_subsumed"]
        )
        assert event["frontier_batches"] == trace.frontier_batches
        assert event["tuples_extracted"] == trace.tuples_extracted
        assert event["tuples_relevant"] == trace.tuples_relevant
        assert event["frontier"] == "tuple"
        assert event["batch_workers"] == 4
        assert event["resilient"] is False
        assert event["degraded"] is False
        log_delta = webdb.log.delta(log_before)
        assert event["log_probes_issued"] == log_delta.probes_issued
        assert event["log_tuples_returned"] == log_delta.tuples_returned
        assert event["log_empty_results"] == log_delta.empty_results
        for phase in ("mapping", "expansion", "ranking"):
            assert event[f"{phase}_seconds"] >= 0.0
        assert event["total_seconds"] > 0.0

    def test_event_trace_id_matches_the_answering_span(
        self, obs_full, setup
    ):
        webdb, model, query = setup
        model.engine(webdb, planner=PLANNER).answer(query)
        event = OBS.events.last()
        assert event["event"] == "engine.answer"
        assert event["trace_id"] == _answer_root().trace_id

    def test_events_without_tracing_still_carry_an_id(self, setup):
        webdb, model, query = setup
        OBS.reset()
        OBS.disable()
        OBS.events.enabled = True
        try:
            model.engine(webdb).answer(query)
            event = OBS.events.last()
            assert event["event"] == "engine.answer"
            assert event["trace_id"].startswith("t-")
            assert OBS.tracer.traces() == []
        finally:
            OBS.events.enabled = False
            OBS.reset()

    def test_gather_similar_emits_its_own_event(self, obs_full, setup):
        webdb, model, query = setup
        seed_row = model.sample.row(0)
        model.engine(webdb).gather_similar(seed_row, target=4, row_id=3)
        event = OBS.events.last()
        assert event["event"] == "engine.gather_similar"
        assert event["mode"] == "gather_similar"
        assert event["query"] == "row:3"
        assert event["k"] == 4


class TestProbeEvents:
    def test_opt_in_probe_events_correlate_with_the_answer(
        self, obs_full, setup
    ):
        webdb, model, query = setup
        OBS.events.probe_events = True
        model.engine(webdb, planner=PLANNER).answer(query)
        events = OBS.events.events()
        probes = [e for e in events if e["event"] == "db.probe"]
        answer = next(e for e in events if e["event"] == "engine.answer")
        assert probes
        assert {e["kind"] for e in probes} <= {"query", "count"}
        # Every probe issued inside the answering span shares its
        # trace id — including pool-dispatched ones.
        assert {e["trace_id"] for e in probes} == {answer["trace_id"]}
        issued = [e for e in probes if not e["from_cache"]]
        assert len(issued) == answer["log_probes_issued"]

    def test_probe_events_off_by_default(self, obs_full, setup):
        webdb, model, query = setup
        model.engine(webdb).answer(query)
        assert all(
            e["event"] != "db.probe" for e in OBS.events.events()
        )

    def test_retry_events_carry_attempt_and_budget(self, obs_full, setup):
        webdb, model, query = setup
        OBS.events.probe_events = True
        webdb.set_fault_policy(
            FaultPolicy(FaultSpec(transient_rate=0.4), seed=5)
        )
        try:
            model.engine(
                webdb, resilience=ResiliencePolicy(), clock=VirtualClock()
            ).answer(query)
        finally:
            webdb.set_fault_policy(None)
        retries = [
            e
            for e in OBS.events.events()
            if e["event"] == "resilience.retry"
        ]
        assert retries
        answer_id = _answer_root().trace_id
        for event in retries:
            assert 1 <= event["attempt"] < event["max_attempts"]
            assert event["delay_seconds"] >= 0.0
            assert event["error"] == "TransientProbeError"
            assert event["trace_id"] == answer_id


class TestBitIdentity:
    def test_observability_never_changes_an_answer(self, setup):
        webdb, model, query = setup
        engine = model.engine(webdb, planner=PLANNER)
        OBS.reset()
        OBS.disable()
        OBS.events.enabled = False
        baseline = _sig(engine.answer(query))
        try:
            OBS.events.enabled = True
            events_only = _sig(engine.answer(query))
            OBS.enable()
            full = _sig(engine.answer(query))
        finally:
            OBS.disable()
            OBS.events.enabled = False
            OBS.reset()
        assert baseline == events_only == full
