"""Semantic probe planner: unit, interplay and bit-identity tests.

The planner's contract is absolute: opt-in batching and reuse may only
change *how* relaxation probes are answered, never *what* any engine
call returns.  These tests pin the store/session mechanics and then
hold the batched engine against the sequential one across frontier
modes, worker counts, the probe cache and fault injection.
"""

from __future__ import annotations

import random

import pytest

from repro.core import AIMQSettings, ImpreciseQuery, build_model
from repro.core.plan import PlannerConfig, PlanSession, SemanticProbeStore
from repro.datasets.cardb import cardb_webdb
from repro.db import SelectionQuery, TransientSourceError
from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.predicates import Eq
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.obs.runtime import OBS
from repro.resilience import ResiliencePolicy, ResilientWebDatabase

# -- small fixtures ----------------------------------------------------------


def _tiny_webdb(result_cap: int | None = None) -> AutonomousWebDatabase:
    schema = RelationSchema.build(
        "tiny", categorical=("A", "B", "C"), numeric=(), order=("A", "B", "C")
    )
    table = Table(schema)
    for row in [
        ("a1", "b1", "c1"),
        ("a1", "b1", "c2"),
        ("a1", "b2", "c1"),
        ("a2", "b1", "c1"),
        ("a1", "b1", "c1"),
        ("a1", "b2", "c2"),
    ]:
        table.insert(row)
    return AutonomousWebDatabase(table, result_cap=result_cap)


def _overlap_webdb(
    n_rows: int = 300, profiles: int = 6, seed: int = 9
) -> AutonomousWebDatabase:
    """Rows drawn from few profiles: guaranteed cross-tuple reuse."""
    rng = random.Random(seed)
    schema = RelationSchema.build(
        "mini", categorical=("A", "B", "C"), numeric=(), order=("A", "B", "C")
    )
    pool = [
        (f"a{rng.randrange(3)}", f"b{rng.randrange(3)}", f"c{rng.randrange(3)}")
        for _ in range(profiles)
    ]
    table = Table(schema)
    for _ in range(n_rows):
        table.insert(rng.choice(pool))
    return AutonomousWebDatabase(table)


@pytest.fixture(scope="module")
def cardb_setup():
    webdb = cardb_webdb(800, seed=3)
    model = build_model(
        webdb,
        sample_size=250,
        rng=random.Random(4),
        settings=AIMQSettings(max_relaxation_level=2),
    )
    webdb.reset_accounting()
    schema = webdb.schema
    row = model.sample.row(5)
    query = ImpreciseQuery.like(
        schema.name, Model=row[schema.position("Model")]
    )
    return webdb, model, query


def _sig(answers) -> list[tuple[int, float, float]]:
    return [(a.row_id, a.similarity, a.base_similarity) for a in answers]


# -- PlannerConfig -----------------------------------------------------------


def test_config_rejects_unknown_frontier_mode():
    with pytest.raises(ValueError, match="frontier"):
        PlannerConfig(frontier="eager")


def test_config_rejects_nonpositive_workers():
    with pytest.raises(ValueError, match="workers"):
        PlannerConfig(workers=0)


# -- SemanticProbeStore ------------------------------------------------------


def test_store_replays_exact_canonical_match():
    webdb = _tiny_webdb()
    store = SemanticProbeStore()
    query = SelectionQuery((Eq("A", "a1"), Eq("B", "b1")))
    store.put_result(query, webdb.query(query), prefetched=False)
    # A different instance with reordered conjuncts hits the same entry.
    twin = SelectionQuery((Eq("B", "b1"), Eq("A", "a1")))
    entry = store.get(twin)
    assert entry is not None
    assert entry.result is not None
    assert entry.result.row_ids == webdb.query(query).row_ids


def test_store_finds_container_and_derives_identical_result():
    webdb = _tiny_webdb()
    store = SemanticProbeStore()
    container_query = SelectionQuery((Eq("A", "a1"),))
    store.put_result(container_query, webdb.query(container_query), prefetched=False)
    demand = SelectionQuery((Eq("A", "a1"), Eq("B", "b1")))
    container = store.find_container(demand)
    assert container is not None
    derived = store.derive(demand, container, webdb.schema, webdb.result_cap)
    direct = webdb.query(demand)
    assert derived.row_ids == direct.row_ids
    assert derived.rows == direct.rows
    assert derived.truncated == direct.truncated
    assert derived.derived and not direct.derived


def test_store_prefers_most_specific_container():
    webdb = _tiny_webdb()
    store = SemanticProbeStore()
    broad = SelectionQuery((Eq("A", "a1"),))
    narrow = SelectionQuery((Eq("A", "a1"), Eq("B", "b1")))
    store.put_result(broad, webdb.query(broad), prefetched=False)
    store.put_result(narrow, webdb.query(narrow), prefetched=False)
    demand = SelectionQuery((Eq("A", "a1"), Eq("B", "b1"), Eq("C", "c1")))
    container = store.find_container(demand)
    assert container is not None
    # Fewest rows to filter: the two-conjunct container wins.
    assert container.query.canonical_predicates() == narrow.canonical_predicates()


def test_store_never_derives_from_truncated_container():
    webdb = _tiny_webdb(result_cap=2)
    store = SemanticProbeStore()
    container_query = SelectionQuery((Eq("A", "a1"),))
    result = webdb.query(container_query)
    assert result.truncated
    store.put_result(container_query, result, prefetched=False)
    demand = SelectionQuery((Eq("A", "a1"), Eq("B", "b1")))
    assert store.find_container(demand) is None


def test_derive_replicates_result_cap_window():
    webdb = _tiny_webdb()
    store = SemanticProbeStore()
    container_query = SelectionQuery.match_all()
    store.put_result(container_query, webdb.query(container_query), prefetched=False)
    demand = SelectionQuery((Eq("A", "a1"),))
    container = store.find_container(demand)
    assert container is not None
    derived = store.derive(demand, container, webdb.schema, result_cap=2)
    assert len(derived.row_ids) == 2
    assert derived.truncated
    # First-N-by-row-id semantics, exactly like the executor's.
    assert list(derived.row_ids) == sorted(derived.row_ids)


def test_speculative_count_tracks_undemanded_prefetches():
    webdb = _tiny_webdb()
    store = SemanticProbeStore()
    query = SelectionQuery((Eq("A", "a2"),))
    entry = store.put_result(query, webdb.query(query), prefetched=True)
    assert store.speculative_count() == 1
    entry.demanded = True
    assert store.speculative_count() == 0


# -- PlanSession -------------------------------------------------------------


def test_session_is_passthrough_under_fault_injection():
    webdb = _tiny_webdb()
    webdb.set_fault_policy(FaultPolicy(FaultSpec(transient_rate=0.0), seed=1))
    session = PlanSession(webdb, PlannerConfig(frontier="tuple", workers=2))
    assert not session.active
    query = SelectionQuery((Eq("A", "a1"),))
    session.prefetch([query], tuple_index=0, level=1)
    assert len(session.store) == 0  # nothing scheduled
    result, kind = session.fetch(query)
    assert kind == "issued"
    assert result.row_ids == webdb.query(query).row_ids


def test_session_forces_serial_dispatch_under_resilience_wrapper():
    guarded = ResilientWebDatabase(_tiny_webdb(), ResiliencePolicy())
    session = PlanSession(guarded, PlannerConfig(frontier="tuple", workers=8))
    assert session.workers == 1


def test_session_replays_dispatch_errors_at_demand_time():
    webdb = _tiny_webdb()
    session = PlanSession(webdb, PlannerConfig(frontier="tuple"))
    query = SelectionQuery((Eq("A", "a1"),))
    boom = TransientSourceError("batch dispatch failed")
    session.store.put_error(query, boom, prefetched=True)
    with pytest.raises(TransientSourceError, match="batch dispatch failed"):
        session.fetch(query)


def test_session_prefetch_deduplicates_within_a_batch():
    webdb = _tiny_webdb()
    session = PlanSession(webdb, PlannerConfig(frontier="tuple"))
    query = SelectionQuery((Eq("A", "a1"), Eq("B", "b1")))
    twin = SelectionQuery((Eq("B", "b1"), Eq("A", "a1")))
    before = webdb.log.probes_issued
    session.prefetch([query, twin], tuple_index=0, level=1)
    assert webdb.log.probes_issued - before == 1


def test_session_fetch_kinds_issued_then_subsumed():
    webdb = _tiny_webdb()
    session = PlanSession(webdb, PlannerConfig(frontier="off"))
    query = SelectionQuery((Eq("A", "a1"),))
    _, first = session.fetch(query)
    _, second = session.fetch(query)
    assert (first, second) == ("issued", "subsumed")
    # Containment derivation also reports "subsumed" and issues nothing.
    before = webdb.log.probes_issued
    _, kind = session.fetch(SelectionQuery((Eq("A", "a1"), Eq("C", "c1"))))
    assert kind == "subsumed"
    assert webdb.log.probes_issued == before


# -- engine bit-identity -----------------------------------------------------


@pytest.mark.parametrize(
    "planner",
    [
        PlannerConfig(frontier="off"),
        PlannerConfig(frontier="tuple"),
        PlannerConfig(frontier="tuple", workers=4),
        PlannerConfig(frontier="all"),
        PlannerConfig(frontier="all", workers=4),
    ],
    ids=["off", "tuple", "tuple-w4", "all", "all-w4"],
)
def test_answer_is_bit_identical_to_serial(cardb_setup, planner):
    webdb, model, query = cardb_setup
    serial = model.engine(webdb).answer(query)
    batched = model.engine(webdb, planner=planner).answer(query)
    assert _sig(batched) == _sig(serial)
    assert batched.trace.logical_probes == serial.trace.total_lookups
    assert batched.trace.queries_issued <= serial.trace.queries_issued
    assert serial.trace.probes_subsumed == 0
    assert serial.trace.frontier_batches == 0


def test_gather_similar_is_bit_identical_to_serial(cardb_setup):
    webdb, model, _ = cardb_setup
    row = model.sample.row(11)
    serial_answers, serial_trace = model.engine(webdb).gather_similar(row)
    planner = PlannerConfig(frontier="tuple", workers=2)
    batched_answers, batched_trace = model.engine(
        webdb, planner=planner
    ).gather_similar(row)
    assert _sig(batched_answers) == _sig(serial_answers)
    assert batched_trace.logical_probes == serial_trace.total_lookups


def test_batched_engine_is_identical_with_probe_cache_on(cardb_setup):
    webdb, model, query = cardb_setup
    webdb.enable_probe_cache(capacity=4096)
    try:
        serial = model.engine(webdb).answer(query)
        batched = model.engine(
            webdb, planner=PlannerConfig(frontier="tuple")
        ).answer(query)
        assert _sig(batched) == _sig(serial)
        assert batched.trace.logical_probes == serial.trace.total_lookups
    finally:
        webdb.disable_probe_cache()


def test_fault_injection_deactivates_planner_and_stays_identical(cardb_setup):
    webdb, model, query = cardb_setup
    policy = FaultPolicy(FaultSpec(transient_rate=0.15), seed=21)
    webdb.set_fault_policy(policy)
    try:
        serial = model.engine(webdb).answer(query)
        webdb.set_fault_policy(FaultPolicy(FaultSpec(transient_rate=0.15), seed=21))
        batched = model.engine(
            webdb, planner=PlannerConfig(frontier="all", workers=4)
        ).answer(query)
    finally:
        webdb.set_fault_policy(None)
    assert _sig(batched) == _sig(serial)
    # Passthrough: the fault schedules aligned probe by probe.
    assert batched.trace.queries_issued == serial.trace.queries_issued
    assert batched.trace.probes_subsumed == 0
    assert batched.trace.frontier_batches == 0


def test_resilient_wrapper_composes_with_planner(cardb_setup):
    webdb, model, query = cardb_setup
    policy = ResiliencePolicy()
    serial = model.engine(webdb, resilience=policy).answer(query)
    batched = model.engine(
        webdb, resilience=policy, planner=PlannerConfig(frontier="tuple", workers=4)
    ).answer(query)
    assert _sig(batched) == _sig(serial)
    assert batched.trace.logical_probes == serial.trace.total_lookups


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_seeds_keep_bit_identity_on_overlap_source(seed):
    webdb = _overlap_webdb(seed=seed + 40)
    model = build_model(
        webdb,
        sample_size=120,
        rng=random.Random(seed),
        settings=AIMQSettings(max_relaxation_level=2),
    )
    webdb.reset_accounting()
    schema = webdb.schema
    row = model.sample.row(seed)
    query = ImpreciseQuery.like(schema.name, A=row[schema.position("A")])
    serial = model.engine(webdb).answer(query)
    batched = model.engine(
        webdb, planner=PlannerConfig(frontier="tuple", workers=2)
    ).answer(query)
    assert _sig(batched) == _sig(serial)
    assert batched.trace.logical_probes == serial.trace.total_lookups
    assert batched.trace.queries_issued < serial.trace.queries_issued
    assert batched.trace.probes_subsumed > 0


def test_planner_metrics_are_recorded():
    webdb = _overlap_webdb()
    model = build_model(
        webdb,
        sample_size=120,
        rng=random.Random(2),
        settings=AIMQSettings(max_relaxation_level=2),
    )
    webdb.reset_accounting()
    schema = webdb.schema
    row = model.sample.row(0)
    query = ImpreciseQuery.like(schema.name, A=row[schema.position("A")])
    was_enabled = OBS.enabled
    OBS.reset()
    OBS.enable()
    try:
        answers = model.engine(
            webdb, planner=PlannerConfig(frontier="tuple")
        ).answer(query)
        assert answers.trace.probes_subsumed > 0
        names = {
            metric["name"]: sum(
                series.get("value", 0) for series in metric["series"]
            )
            for metric in OBS.registry.snapshot()["metrics"]
        }
    finally:
        OBS.reset()
        if not was_enabled:
            OBS.disable()
    assert names.get("repro_core_probes_subsumed_total", 0) > 0
    assert names.get("repro_core_frontier_batches_total", 0) > 0
