"""Unit tests for model persistence."""

import json

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery
from repro.core.store import FORMAT_VERSION, StoreError, load_model, save_model
from repro.db.schema import RelationSchema


@pytest.fixture(scope="module")
def mined_model(car_table):
    sample = car_table.sample(range(0, len(car_table), 3))
    return build_model_from_sample(sample, settings=AIMQSettings(top_k=7))


class TestRoundTrip:
    def test_save_creates_file(self, mined_model, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION

    def test_ordering_roundtrip(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        assert loaded.ordering.relaxation_order == mined_model.ordering.relaxation_order
        assert loaded.ordering.importance == pytest.approx(
            mined_model.ordering.importance
        )
        if mined_model.ordering.best_key is not None:
            assert (
                loaded.ordering.best_key.attributes
                == mined_model.ordering.best_key.attributes
            )

    def test_dependencies_roundtrip(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        assert len(loaded.dependencies.afds) == len(mined_model.dependencies.afds)
        assert len(loaded.dependencies.keys) == len(mined_model.dependencies.keys)
        assert loaded.dependencies.sample_size == mined_model.dependencies.sample_size

    def test_similarity_roundtrip(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        original = mined_model.value_similarity
        for attribute in original.attributes:
            assert loaded.value_similarity.pairs(attribute) == pytest.approx(
                original.pairs(attribute)
            )
            assert loaded.value_similarity.known_values(
                attribute
            ) == original.known_values(attribute)

    def test_settings_roundtrip(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        assert loaded.settings == mined_model.settings

    def test_loaded_model_answers_queries(
        self, mined_model, car_table, car_webdb, tmp_path
    ):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        engine = loaded.engine(car_webdb)
        answers = engine.answer(
            ImpreciseQuery.like("CarDB", Model="Camry", Price=9000), k=5
        )
        assert len(answers) >= 1

    def test_loaded_equals_original_answers(
        self, mined_model, car_table, car_webdb, tmp_path
    ):
        path = save_model(mined_model, tmp_path / "model.json")
        loaded = load_model(path, car_table.schema)
        query = ImpreciseQuery.like("CarDB", Model="Civic", Price=8000)
        original = mined_model.engine(car_webdb).answer(query, k=5)
        reloaded = loaded.engine(car_webdb).answer(query, k=5)
        assert original.row_ids == reloaded.row_ids


class TestErrors:
    def test_wrong_relation_rejected(self, mined_model, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        other = RelationSchema.build("Other", categorical=("A",))
        with pytest.raises(StoreError):
            load_model(path, other)

    def test_schema_drift_rejected(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        drifted = RelationSchema.build(
            "CarDB",
            categorical=("Make", "Model", "Year", "Location", "Color", "Trim"),
            numeric=("Price", "Mileage"),
        )
        with pytest.raises(StoreError):
            load_model(path, drifted)

    def test_version_mismatch_rejected(self, mined_model, car_table, tmp_path):
        path = save_model(mined_model, tmp_path / "model.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError):
            load_model(path, car_table.schema)

    def test_missing_file(self, car_table, tmp_path):
        with pytest.raises(StoreError):
            load_model(tmp_path / "nope.json", car_table.schema)

    def test_corrupt_file(self, car_table, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StoreError):
            load_model(path, car_table.schema)
