"""Unit tests for imprecise queries and base-query mapping."""

import pytest

from repro.core.query import (
    BaseQueryMapper,
    ImpreciseQuery,
    LikeConstraint,
    PreciseConstraint,
)
from repro.db.errors import QueryError
from repro.db.predicates import Between, Lt
from repro.db.webdb import AutonomousWebDatabase


class TestImpreciseQuery:
    def test_like_shorthand(self):
        q = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        assert q.relation == "Cars"
        assert q.bound_attributes == ("Model", "Price")
        assert len(q.like_constraints) == 2

    def test_mixed_constraints(self):
        q = ImpreciseQuery(
            "Cars",
            (
                LikeConstraint("Model", "Camry"),
                PreciseConstraint(Lt("Price", 10000)),
            ),
        )
        assert q.like_binding("Model") == "Camry"
        assert q.like_binding("Price") is None

    def test_to_base_query_tightens_like_to_equality(self):
        q = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        base = q.to_base_query()
        assert base.equality_binding("Model") == "Camry"
        assert base.equality_binding("Price") == 10000

    def test_precise_predicates_pass_through(self):
        q = ImpreciseQuery(
            "Cars",
            (LikeConstraint("Model", "Camry"), PreciseConstraint(Lt("Price", 9000))),
        )
        base = q.to_base_query()
        assert any(isinstance(p, Lt) for p in base)

    def test_no_constraints_rejected(self):
        with pytest.raises(QueryError):
            ImpreciseQuery("Cars", ())

    def test_double_binding_rejected(self):
        with pytest.raises(QueryError):
            ImpreciseQuery(
                "Cars",
                (LikeConstraint("Model", "a"), LikeConstraint("Model", "b")),
            )

    def test_validate_against_wrong_relation(self, toy_schema):
        q = ImpreciseQuery.like("Other", Model="Camry")
        with pytest.raises(QueryError):
            q.validate_against(toy_schema)

    def test_describe(self):
        text = ImpreciseQuery.like("Cars", Model="Camry").describe()
        assert "Model like 'Camry'" in text


class TestBaseQueryMapper:
    def mapper(self, webdb, order=("Year", "Price", "Model", "Make")):
        return BaseQueryMapper(webdb, relaxation_order=order)

    def test_direct_hit(self, toy_webdb):
        q = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        base = self.mapper(toy_webdb).map(q)
        assert len(base) == 1
        assert base.generalisation_steps == ()

    def test_numeric_widening(self, toy_webdb):
        # No car costs exactly 10100, but 10000 and 10500 are within 10%.
        q = ImpreciseQuery.like("Cars", Model="Camry", Price=10100)
        base = self.mapper(toy_webdb).map(q)
        assert len(base) >= 1
        assert "widened numeric equalities into bands" in base.generalisation_steps

    def test_attribute_dropping_least_important_first(self, toy_webdb):
        # No Honda Camry exists; Make is least important in the supplied
        # order, so it is dropped first and the Camrys survive.
        mapper = BaseQueryMapper(
            toy_webdb, relaxation_order=("Make", "Model", "Price", "Year")
        )
        q = ImpreciseQuery.like("Cars", Model="Camry", Make="Honda")
        base = mapper.map(q)
        assert any("Make" in step for step in base.generalisation_steps)
        assert all(row[1] == "Camry" for row in base.rows)

    def test_unmapped_attribute_drops_first(self, toy_webdb):
        mapper = BaseQueryMapper(toy_webdb, relaxation_order=("Model",))
        q = ImpreciseQuery.like("Cars", Model="Camry", Make="Honda")
        base = mapper.map(q)
        # Make is not in the order: treated as least important.
        assert any("Make" in step for step in base.generalisation_steps)

    def test_unsatisfiable_query_raises(self, toy_webdb):
        q = ImpreciseQuery.like("Cars", Model="Edsel")
        with pytest.raises(QueryError):
            self.mapper(toy_webdb).map(q)

    def test_band_fraction_validation(self, toy_webdb):
        with pytest.raises(ValueError):
            BaseQueryMapper(toy_webdb, numeric_band_fraction=0.0)

    def test_widen_numeric_produces_between(self, toy_webdb):
        mapper = self.mapper(toy_webdb)
        base_query = ImpreciseQuery.like("Cars", Price=10100).to_base_query()
        widened = mapper._widen_numeric(base_query)
        predicates = widened.predicates_on("Price")
        assert len(predicates) == 1 and isinstance(predicates[0], Between)

    def test_zero_value_widening(self, toy_schema):
        from repro.db.table import Table

        table = Table(toy_schema)
        table.insert(("Ford", "Focus", 0, 2001))
        webdb = AutonomousWebDatabase(table)
        mapper = BaseQueryMapper(webdb)
        base_query = ImpreciseQuery.like("Cars", Price=0).to_base_query()
        widened = mapper._widen_numeric(base_query)
        predicate = widened.predicates_on("Price")[0]
        assert predicate.matches(0)

    def test_categorical_not_widened(self, toy_webdb):
        mapper = self.mapper(toy_webdb)
        base_query = ImpreciseQuery.like("Cars", Model="Camry").to_base_query()
        assert mapper._widen_numeric(base_query) is base_query
