"""Unit tests for answer containers."""

import pytest

from repro.core.query import ImpreciseQuery
from repro.core.results import AnswerSet, RankedAnswer, RelaxationTrace


def make_answer(row_id=0, similarity=0.9) -> RankedAnswer:
    return RankedAnswer(
        row_id=row_id,
        row=("Toyota", "Camry", 10000, 2000),
        similarity=similarity,
        base_similarity=similarity,
        source_base_row_id=0,
        relaxation_level=1,
    )


class TestRankedAnswer:
    def test_as_mapping(self, toy_schema):
        mapping = make_answer().as_mapping(toy_schema)
        assert mapping["Model"] == "Camry"


class TestAnswerSet:
    def make(self) -> AnswerSet:
        query = ImpreciseQuery.like("Cars", Model="Camry")
        return AnswerSet(
            query=query,
            answers=[make_answer(0, 0.9), make_answer(1, 0.8)],
        )

    def test_container_protocol(self):
        answers = self.make()
        assert len(answers) == 2
        assert answers[0].similarity == 0.9
        assert [a.row_id for a in answers] == [0, 1]

    def test_rows_and_ids(self):
        answers = self.make()
        assert answers.row_ids == [0, 1]
        assert len(answers.rows) == 2

    def test_describe(self, toy_schema):
        text = self.make().describe(toy_schema)
        assert "Camry" in text and "sim=0.900" in text

    def test_describe_top(self, toy_schema):
        text = self.make().describe(toy_schema, top=1)
        assert text.count("sim=") == 1


class TestRelaxationTrace:
    def test_defaults(self):
        trace = RelaxationTrace()
        assert trace.work_per_relevant_tuple == float("inf")

    def test_ratio(self):
        trace = RelaxationTrace(tuples_extracted=9, tuples_relevant=3)
        assert trace.work_per_relevant_tuple == pytest.approx(3.0)
