"""Unit tests for the textual query language."""

import pytest

from repro.core.parser import ParseError, parse_query
from repro.core.query import LikeConstraint, PreciseConstraint
from repro.db.predicates import Ge, Lt, Ne


class TestRelationForm:
    def test_paper_example(self):
        q = parse_query("CarDB(Model like Camry, Price < 10000)")
        assert q.relation == "CarDB"
        assert q.bound_attributes == ("Model", "Price")
        assert isinstance(q.constraints[0], LikeConstraint)
        assert q.constraints[0].value == "Camry"
        precise = q.constraints[1]
        assert isinstance(precise, PreciseConstraint)
        assert isinstance(precise.predicate, Lt)
        assert precise.predicate.bound == 10000

    def test_relation_argument_must_agree(self):
        with pytest.raises(ParseError):
            parse_query("CarDB(Model like Camry)", relation="CensusDB")

    def test_relation_argument_may_match(self):
        q = parse_query("CarDB(Model like Camry)", relation="CarDB")
        assert q.relation == "CarDB"


class TestBareConjunction:
    def test_requires_relation(self):
        with pytest.raises(ParseError):
            parse_query("Model like Camry")

    def test_and_separator(self):
        q = parse_query(
            "Model like Camry AND Price < 10000", relation="CarDB"
        )
        assert q.bound_attributes == ("Model", "Price")

    def test_case_insensitive_and(self):
        q = parse_query("Model like Camry and Make like Toyota", relation="CarDB")
        assert len(q.constraints) == 2

    def test_comma_separator(self):
        q = parse_query("Model like Camry, Make like Toyota", relation="CarDB")
        assert len(q.constraints) == 2


class TestValues:
    def test_quoted_string_preserves_spaces(self):
        q = parse_query("Model like 'Econoline Van'", relation="CarDB")
        assert q.constraints[0].value == "Econoline Van"

    def test_quoted_number_stays_string(self):
        q = parse_query("Year like '1985'", relation="CarDB")
        assert q.constraints[0].value == "1985"

    def test_bare_int(self):
        q = parse_query("Price like 10000", relation="CarDB")
        assert q.constraints[0].value == 10000

    def test_bare_float(self):
        q = parse_query("Price like 99.5", relation="CarDB")
        assert q.constraints[0].value == 99.5

    def test_double_quotes(self):
        q = parse_query('Location like "Los Angeles"', relation="CarDB")
        assert q.constraints[0].value == "Los Angeles"

    def test_quoted_value_containing_and(self):
        q = parse_query(
            "Model like 'Sand and Sun' AND Price < 9000", relation="CarDB"
        )
        assert q.constraints[0].value == "Sand and Sun"
        assert len(q.constraints) == 2


class TestOperators:
    @pytest.mark.parametrize(
        "text,cls",
        [
            ("Price < 1", Lt),
            ("Price >= 1", Ge),
            ("Price != 1", Ne),
        ],
    )
    def test_precise_operators(self, text, cls):
        q = parse_query(text, relation="CarDB")
        assert isinstance(q.constraints[0].predicate, cls)

    def test_like_is_case_insensitive(self):
        q = parse_query("Model LIKE Camry", relation="CarDB")
        assert isinstance(q.constraints[0], LikeConstraint)

    def test_equals_is_precise(self):
        q = parse_query("Model = Camry", relation="CarDB")
        assert isinstance(q.constraints[0], PreciseConstraint)


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(ParseError):
            parse_query("")

    def test_gibberish(self):
        with pytest.raises(ParseError):
            parse_query("@@@@", relation="CarDB")

    def test_empty_parens(self):
        with pytest.raises(ParseError):
            parse_query("CarDB()")

    def test_double_binding_rejected(self):
        with pytest.raises(Exception):
            parse_query("Model like A, Model like B", relation="CarDB")


class TestRoundTripWithEngine:
    def test_parsed_query_answers(self, car_webdb, car_table):
        from repro.core.pipeline import build_model_from_sample

        sample = car_table.sample(range(0, len(car_table), 4))
        model = build_model_from_sample(sample)
        engine = model.engine(car_webdb)
        q = parse_query("CarDB(Model like Camry, Price like 9000)")
        answers = engine.answer(q, k=5)
        assert len(answers) >= 1
