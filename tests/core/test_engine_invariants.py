"""Engine invariants that must hold for any query on any dataset."""

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import ImpreciseQuery, LikeConstraint, PreciseConstraint
from repro.db.predicates import Ge, Lt


@pytest.fixture(scope="module")
def engine(car_table, car_webdb):
    sample = car_table.sample(range(0, len(car_table), 2))
    model = build_model_from_sample(
        sample, settings=AIMQSettings(max_relaxation_level=3)
    )
    return model.engine(car_webdb)


QUERIES = [
    ImpreciseQuery.like("CarDB", Model="Camry", Price=10000),
    ImpreciseQuery.like("CarDB", Make="Ford", Year="2000"),
    ImpreciseQuery.like("CarDB", Model="Civic"),
    ImpreciseQuery.like("CarDB", Location="Phoenix", Color="Red", Price=8000),
]


class TestAnswerInvariants:
    @pytest.mark.parametrize("query", QUERIES, ids=[q.describe() for q in QUERIES])
    def test_answers_exist_in_source(self, engine, car_table, query):
        answers = engine.answer(query, k=10)
        for answer in answers:
            assert car_table.row(answer.row_id) == answer.row

    @pytest.mark.parametrize("query", QUERIES, ids=[q.describe() for q in QUERIES])
    def test_scores_in_unit_interval(self, engine, query):
        answers = engine.answer(query, k=10)
        for answer in answers:
            assert 0.0 <= answer.similarity <= 1.0
            assert 0.0 <= answer.base_similarity <= 1.0

    @pytest.mark.parametrize("query", QUERIES, ids=[q.describe() for q in QUERIES])
    def test_deterministic(self, engine, query):
        first = engine.answer(query, k=10)
        second = engine.answer(query, k=10)
        assert first.row_ids == second.row_ids
        assert [a.similarity for a in first] == [a.similarity for a in second]

    def test_precise_constraints_bind_the_base_set(self, engine):
        """Precise conjuncts filter the base set (exact AIMQ semantics).

        Tuples found by relaxation may exceed the precise bound — the
        paper's own motivating example *wants* the $10,500 Camry shown
        for "Price < 10000" — but every level-0 answer (a direct match
        of the tightened query) must satisfy the precise predicate.
        """
        query = ImpreciseQuery(
            "CarDB",
            (
                LikeConstraint("Model", "Accord"),
                PreciseConstraint(Lt("Price", 9000)),
            ),
        )
        answers = engine.answer(query, k=20)
        schema = engine.webdb.schema
        price_position = schema.position("Price")
        base_rows = {
            a.row_id for a in answers if a.relaxation_level == 0
        }
        for answer in answers:
            if answer.row_id in base_rows:
                assert answer.row[price_position] < 9000

    def test_relaxed_answers_pass_threshold(self, engine):
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        answers = engine.answer(query, k=30, similarity_threshold=0.6)
        for answer in answers:
            if answer.relaxation_level > 0:
                assert answer.base_similarity > 0.6

    def test_k_monotonicity(self, engine):
        """Growing k only appends answers, never reorders the prefix."""
        query = ImpreciseQuery.like("CarDB", Model="Camry", Price=10000)
        small = engine.answer(query, k=5).row_ids
        large = engine.answer(query, k=10).row_ids
        assert large[: len(small)] == small

    def test_numeric_precise_lower_bound(self, engine):
        query = ImpreciseQuery(
            "CarDB",
            (
                LikeConstraint("Model", "F-150"),
                PreciseConstraint(Ge("Price", 15000)),
            ),
        )
        answers = engine.answer(query, k=10)
        schema = engine.webdb.schema
        price_position = schema.position("Price")
        for answer in answers:
            if answer.relaxation_level == 0:
                assert answer.row[price_position] >= 15000
