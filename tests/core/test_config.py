"""Unit tests for AIMQ settings validation."""

import pytest

from repro.core.config import AIMQSettings


class TestDefaults:
    def test_defaults_valid(self):
        settings = AIMQSettings()
        assert 0 < settings.similarity_threshold < 1
        assert settings.tane.numeric_bins == 8
        assert settings.tane.key_error_threshold == 0.45

    def test_frozen(self):
        with pytest.raises(Exception):
            AIMQSettings().top_k = 5  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"similarity_threshold": 0.0},
            {"similarity_threshold": 1.0},
            {"top_k": 0},
            {"base_set_cap": 0},
            {"target_per_base_tuple": 0},
            {"max_relaxation_level": 0},
            {"max_extracted_per_base_tuple": 0},
            {"numeric_band_fraction": 0.0},
            {"numeric_band_fraction": 1.5},
            {"tuple_query_numeric_band": -0.1},
            {"importance_smoothing": 1.5},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            AIMQSettings(**kwargs)

    def test_zero_band_allowed(self):
        assert AIMQSettings(tuple_query_numeric_band=0.0).tuple_query_numeric_band == 0.0

    def test_zero_smoothing_allowed(self):
        assert AIMQSettings(importance_smoothing=0.0).importance_smoothing == 0.0
