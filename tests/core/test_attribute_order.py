"""Unit tests for Algorithm 2: attribute ordering and importance."""

import pytest

from repro.afd.model import AFD, ApproximateKey, DependencyModel
from repro.core.attribute_order import (
    AttributeOrdering,
    compute_attribute_ordering,
    uniform_ordering,
)
from repro.db.schema import RelationSchema


@pytest.fixture()
def schema() -> RelationSchema:
    return RelationSchema.build(
        "R",
        categorical=("Make", "Model", "Color"),
        numeric=("Price", "Mileage"),
        order=("Make", "Model", "Price", "Mileage", "Color"),
    )


@pytest.fixture()
def model(schema) -> DependencyModel:
    m = DependencyModel(schema.attribute_names)
    # Model strongly determines Make; Price weakly determines Mileage.
    m.add_afd(AFD(lhs=("Model",), rhs="Make", error=0.0))
    m.add_afd(AFD(lhs=("Model", "Price"), rhs="Mileage", error=0.1))
    m.add_afd(AFD(lhs=("Price",), rhs="Mileage", error=0.12))
    m.add_key(ApproximateKey(attributes=("Model", "Price"), error=0.05))
    m.add_key(ApproximateKey(attributes=("Color",), error=0.4))
    return m


class TestComputeOrdering:
    def test_groups_follow_best_key(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        assert set(ordering.deciding) == {"Model", "Price"}
        assert set(ordering.dependent) == {"Make", "Mileage", "Color"}
        assert ordering.best_key.attributes == ("Model", "Price")

    def test_dependent_relaxed_before_deciding(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        order = ordering.relaxation_order
        deciding_positions = [order.index(a) for a in ordering.deciding]
        dependent_positions = [order.index(a) for a in ordering.dependent]
        assert max(dependent_positions) < min(deciding_positions)

    def test_dependent_sorted_ascending_by_depends_weight(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        # Color has zero dependence; Mileage 0.1/2 support + ...; Make 1.0.
        dependent_in_order = [
            a for a in ordering.relaxation_order if a in ordering.dependent
        ]
        weights = [model.dependence_weight(a) for a in dependent_in_order]
        assert weights == sorted(weights)

    def test_importance_sums_to_one(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        assert sum(ordering.importance.values()) == pytest.approx(1.0)

    def test_relax_position_one_based(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        first = ordering.relaxation_order[0]
        assert ordering.relax_position(first) == 1

    def test_no_keys_all_dependent(self, schema):
        model = DependencyModel(schema.attribute_names)
        model.add_afd(AFD(lhs=("Model",), rhs="Make", error=0.0))
        ordering = compute_attribute_ordering(schema, model)
        assert ordering.deciding == ()
        assert set(ordering.dependent) == set(schema.attribute_names)
        assert ordering.best_key is None

    def test_empty_model_positional_fallback(self, schema):
        model = DependencyModel(schema.attribute_names)
        ordering = compute_attribute_ordering(schema, model)
        # With nothing mined, importance degrades to the positional
        # factor: later relaxation positions weigh strictly more.
        ordered_weights = [
            ordering.importance[name] for name in ordering.relaxation_order
        ]
        assert ordered_weights == sorted(ordered_weights)
        assert len(set(ordered_weights)) == len(ordered_weights)
        assert sum(ordered_weights) == pytest.approx(1.0)

    def test_key_criterion_quality(self, schema, model):
        by_quality = compute_attribute_ordering(schema, model, key_criterion="quality")
        # quality: {Model,Price}=0.95/2=0.475 vs {Color}=0.6/1=0.6.
        assert by_quality.best_key.attributes == ("Color",)

    def test_deterministic(self, schema, model):
        a = compute_attribute_ordering(schema, model)
        b = compute_attribute_ordering(schema, model)
        assert a.relaxation_order == b.relaxation_order
        assert a.importance == b.importance


class TestWeightsOver:
    def test_renormalises_over_subset(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        weights = ordering.weights_over(("Model", "Price"))
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_zero_subset_falls_back_to_uniform(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        zero_attrs = tuple(
            name for name, w in ordering.importance.items() if w == 0.0
        )
        if zero_attrs:
            weights = ordering.weights_over(zero_attrs)
            assert all(
                w == pytest.approx(1.0 / len(zero_attrs)) for w in weights.values()
            )

    def test_empty_subset(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        assert ordering.weights_over(()) == {}


class TestSmoothing:
    def test_zero_smoothing_identity(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        assert ordering.smoothed(0.0) is ordering

    def test_full_smoothing_uniform(self, schema, model):
        ordering = compute_attribute_ordering(schema, model).smoothed(1.0)
        n = len(schema)
        assert all(
            w == pytest.approx(1 / n) for w in ordering.importance.values()
        )

    def test_partial_smoothing_keeps_sum(self, schema, model):
        ordering = compute_attribute_ordering(schema, model).smoothed(0.3)
        assert sum(ordering.importance.values()) == pytest.approx(1.0)

    def test_partial_smoothing_preserves_order(self, schema, model):
        raw = compute_attribute_ordering(schema, model)
        smooth = raw.smoothed(0.3)
        assert smooth.relaxation_order == raw.relaxation_order
        raw_rank = sorted(raw.importance, key=raw.importance.get)
        smooth_rank = sorted(smooth.importance, key=smooth.importance.get)
        assert raw_rank == smooth_rank

    def test_invalid_smoothing(self, schema, model):
        ordering = compute_attribute_ordering(schema, model)
        with pytest.raises(ValueError):
            ordering.smoothed(-0.1)


class TestUniformOrdering:
    def test_uniform(self, schema):
        ordering = uniform_ordering(schema)
        assert ordering.relaxation_order == schema.attribute_names
        assert all(
            w == pytest.approx(1 / len(schema))
            for w in ordering.importance.values()
        )
        assert ordering.best_key is None


class TestValidation:
    def test_mismatched_importance_rejected(self):
        with pytest.raises(ValueError):
            AttributeOrdering(
                relaxation_order=("A", "B"),
                importance={"A": 1.0},
                deciding=(),
                dependent=("A", "B"),
                best_key=None,
                decides_weight={},
                depends_weight={},
            )

    def test_describe_lists_positions(self, schema, model):
        text = compute_attribute_ordering(schema, model).describe()
        assert "1." in text and "Model" in text
