"""End-to-end bit-identity of the inverted-index answering path.

``indexed_ranking`` (the engine's early-terminating
:class:`~repro.core.similarity.BoundedScorer`) and the simmining
``use_index``/``index_topk`` flags are pure retrieval optimisations:
with all three on — the ``--sim-index`` CLI posture — every query must
return the identical ranked answers, tie order included.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model
from repro.core.query import ImpreciseQuery
from repro.datasets.cardb import cardb_webdb


def _answers(settings: AIMQSettings, query: ImpreciseQuery):
    webdb = cardb_webdb(600, seed=11)
    model = build_model(
        webdb, sample_size=200, rng=random.Random(12), settings=settings
    )
    result = model.engine(webdb).answer(query, k=25)
    answers = result.answers if hasattr(result, "answers") else result[0]
    return [
        (
            answer.row_id,
            answer.similarity,
            answer.base_similarity,
            answer.relaxation_level,
        )
        for answer in answers
    ]


QUERIES = [
    ImpreciseQuery.like("CarDB", Make="Ford"),
    ImpreciseQuery.like("CarDB", Model="Civic", Price=7000),
    ImpreciseQuery.like("CarDB", Model="Corolla", Year=2002),
]


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: str(q.constraints))
def test_sim_index_posture_answers_bit_identical(query):
    plain = AIMQSettings(max_relaxation_level=3)
    indexed = dataclasses.replace(
        plain,
        indexed_ranking=True,
        simmining=dataclasses.replace(
            plain.simmining, use_index=True, index_topk=True
        ),
    )
    ranking_only = dataclasses.replace(plain, indexed_ranking=True)
    baseline = _answers(plain, query)
    assert baseline  # a vacuous comparison would prove nothing
    assert _answers(indexed, query) == baseline
    assert _answers(ranking_only, query) == baseline
