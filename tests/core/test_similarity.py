"""Unit tests for query-tuple similarity estimation."""

import pytest

from repro.core.attribute_order import uniform_ordering
from repro.core.query import ImpreciseQuery
from repro.core.similarity import (
    TupleSimilarity,
    numeric_similarity,
    range_scaled_similarity,
)
from repro.simmining.estimator import SimilarityModel


class TestNumericSimilarity:
    def test_identity(self):
        assert numeric_similarity(100, 100) == 1.0

    def test_relative_distance(self):
        assert numeric_similarity(100, 90) == pytest.approx(0.9)
        assert numeric_similarity(100, 110) == pytest.approx(0.9)

    def test_lower_bound_clamped(self):
        # Distance > 1 is clamped to 1 -> similarity 0 (paper's guard).
        assert numeric_similarity(100, 500) == 0.0

    def test_zero_reference(self):
        assert numeric_similarity(0, 0) == 1.0
        assert numeric_similarity(0, 5) == 0.0

    def test_negative_values(self):
        assert numeric_similarity(-100, -90) == pytest.approx(0.9)


class TestRangeScaledSimilarity:
    def test_identity(self):
        assert range_scaled_similarity(50, 50, 0, 100) == 1.0

    def test_absolute_scaling(self):
        assert range_scaled_similarity(50, 60, 0, 100) == pytest.approx(0.9)
        # Same absolute gap costs the same anywhere in the range.
        assert range_scaled_similarity(10, 20, 0, 100) == pytest.approx(0.9)

    def test_full_range_distance_is_zero(self):
        assert range_scaled_similarity(0, 100, 0, 100) == 0.0

    def test_degenerate_extent(self):
        assert range_scaled_similarity(5, 5, 5, 5) == 1.0
        assert range_scaled_similarity(5, 6, 5, 5) == 0.0

    def test_clamped(self):
        assert range_scaled_similarity(0, 500, 0, 100) == 0.0


class TestNumericModeSelection:
    def make(self, toy_schema, mode, extents=None):
        return TupleSimilarity(
            toy_schema,
            uniform_ordering(toy_schema),
            SimilarityModel(["Make", "Model"]),
            numeric_mode=mode,
            numeric_extents=extents,
        )

    def test_invalid_mode_rejected(self, toy_schema):
        with pytest.raises(ValueError):
            self.make(toy_schema, "euclidean")

    def test_range_mode_uses_extents(self, toy_schema):
        scorer = self.make(
            toy_schema, "range", extents={"Price": (0.0, 20000.0)}
        )
        row = ("Toyota", "Camry", 11000, 2000)
        # |10000-11000| / 20000 = 0.05 -> 0.95 (relative would give 0.9)
        assert scorer.sim_to_bindings({"Price": 10000}, row) == pytest.approx(
            0.95
        )

    def test_range_mode_falls_back_without_extent(self, toy_schema):
        scorer = self.make(toy_schema, "range", extents={})
        row = ("Toyota", "Camry", 11000, 2000)
        assert scorer.sim_to_bindings({"Price": 10000}, row) == pytest.approx(
            0.9
        )


@pytest.fixture()
def scorer(toy_schema):
    model = SimilarityModel(["Make", "Model"])
    model.record("Model", "Camry", "Accord", 0.8)
    model.record("Model", "Camry", "F-150", 0.1)
    model.record("Make", "Toyota", "Honda", 0.5)
    ordering = uniform_ordering(toy_schema)
    return TupleSimilarity(toy_schema, ordering, model)


class TestSimToBindings:
    def test_exact_match_scores_one(self, scorer):
        row = ("Toyota", "Camry", 10000, 2000)
        bindings = {"Make": "Toyota", "Model": "Camry", "Price": 10000}
        assert scorer.sim_to_bindings(bindings, row) == pytest.approx(1.0)

    def test_weighted_mix(self, scorer):
        row = ("Honda", "Accord", 10000, 2000)
        bindings = {"Model": "Camry", "Price": 10000}
        # uniform weights over 2 bound attrs: 0.5*0.8 + 0.5*1.0
        assert scorer.sim_to_bindings(bindings, row) == pytest.approx(0.9)

    def test_unknown_categorical_pair_scores_zero(self, scorer):
        row = ("Ford", "Focus", 10000, 2000)
        assert scorer.sim_to_bindings({"Model": "Camry"}, row) == pytest.approx(0.0)

    def test_null_candidate_scores_zero(self, scorer, toy_schema):
        row = ("Toyota", None, 10000, 2000)
        assert scorer.sim_to_bindings({"Model": "Camry"}, row) == 0.0

    def test_empty_bindings(self, scorer):
        assert scorer.sim_to_bindings({}, ("Toyota", "Camry", 1, 2)) == 0.0

    def test_range_in_unit_interval(self, scorer):
        row = ("Honda", "F-150", 99999, 1900)
        bindings = {"Model": "Camry", "Price": 10000, "Year": 2000}
        assert 0.0 <= scorer.sim_to_bindings(bindings, row) <= 1.0


class TestSimToQuery:
    def test_uses_like_constraints_only(self, scorer):
        from repro.core.query import LikeConstraint, PreciseConstraint
        from repro.db.predicates import Lt

        query = ImpreciseQuery(
            "Cars",
            (
                LikeConstraint("Model", "Camry"),
                PreciseConstraint(Lt("Price", 99999)),
            ),
        )
        row = ("Honda", "Accord", 1, 2000)
        # Only Model contributes: VSim(Camry, Accord) = 0.8.
        assert scorer.sim_to_query(query, row) == pytest.approx(0.8)

    def test_no_like_constraints(self, scorer):
        from repro.core.query import PreciseConstraint
        from repro.db.predicates import Lt

        query = ImpreciseQuery("Cars", (PreciseConstraint(Lt("Price", 1)),))
        assert scorer.sim_to_query(query, ("Toyota", "Camry", 0, 0)) == 0.0


class TestSimBetweenRows:
    def test_identical_rows(self, scorer):
        row = ("Toyota", "Camry", 10000, 2000)
        assert scorer.sim_between_rows(row, row) == pytest.approx(1.0)

    def test_symmetric_for_categoricals(self, scorer):
        a = ("Toyota", "Camry", 10000, 2000)
        b = ("Honda", "Accord", 10000, 2000)
        assert scorer.sim_between_rows(a, b) == pytest.approx(
            scorer.sim_between_rows(b, a)
        )

    def test_attribute_subset(self, scorer):
        a = ("Toyota", "Camry", 10000, 2000)
        b = ("Honda", "Accord", 99999, 1900)
        only_model = scorer.sim_between_rows(a, b, attributes=("Model",))
        assert only_model == pytest.approx(0.8)

    def test_null_reference_attributes_skipped(self, scorer):
        a = ("Toyota", None, 10000, 2000)
        b = ("Toyota", "Accord", 10000, 2000)
        # Model is null in the reference: similarity over remaining attrs.
        assert scorer.sim_between_rows(a, b) == pytest.approx(1.0)


class TestCompiledScorers:
    """The precompiled fast path must be bit-for-bit the reference path."""

    ROWS = [
        ("Toyota", "Camry", 10000, 2000),
        ("Honda", "Accord", 10000, 2000),
        ("Honda", "F-150", 99999, 1900),
        ("Ford", "Focus", 7000, 2001),
        ("Toyota", None, 10000, 2000),
        (None, "Camry", None, None),
    ]

    def test_bindings_scorer_bit_equal(self, scorer):
        bindings = {"Model": "Camry", "Price": 10000, "Year": 2000}
        compiled = scorer.bindings_scorer(bindings)
        for row in self.ROWS:
            assert compiled(row) == scorer.sim_to_bindings(bindings, row)

    def test_bindings_scorer_with_null_reference(self, scorer):
        bindings = {"Model": None, "Price": 10000}
        compiled = scorer.bindings_scorer(bindings)
        for row in self.ROWS:
            assert compiled(row) == scorer.sim_to_bindings(bindings, row)

    def test_query_scorer_bit_equal(self, scorer):
        query = ImpreciseQuery.like("Cars", Model="Camry", Price=10000)
        compiled = scorer.query_scorer(query)
        for row in self.ROWS:
            assert compiled(row) == scorer.sim_to_query(query, row)

    def test_row_scorer_bit_equal(self, scorer):
        reference = ("Toyota", "Camry", 10000, 2000)
        compiled = scorer.row_scorer(reference)
        for row in self.ROWS:
            assert compiled(row) == scorer.sim_between_rows(reference, row)

    def test_row_scorer_attribute_subset(self, scorer):
        reference = ("Toyota", "Camry", 10000, 2000)
        compiled = scorer.row_scorer(reference, attributes=("Model", "Price"))
        for row in self.ROWS:
            assert compiled(row) == scorer.sim_between_rows(
                reference, row, attributes=("Model", "Price")
            )

    def test_empty_bindings_scorer(self, scorer):
        assert scorer.bindings_scorer({})(("Toyota", "Camry", 1, 2)) == 0.0

    def test_weights_memo_reused(self, scorer):
        scorer.bindings_scorer({"Model": "Camry", "Price": 1})
        first = scorer._weights_memo[("Model", "Price")]
        scorer.bindings_scorer({"Model": "Accord", "Price": 2})
        assert scorer._weights_memo[("Model", "Price")] is first


class TestBoundedScorer:
    """Early termination must be sound: skip only provable non-answers."""

    ROWS = TestCompiledScorers.ROWS

    @pytest.fixture()
    def indexed_scorer(self, toy_schema):
        """Same mined pairs as ``scorer`` but with the neighbour index,
        so categorical caps come from real posting-list heads."""
        model = SimilarityModel(["Make", "Model"])
        model.enable_top_index()
        model.record("Model", "Camry", "Accord", 0.8)
        model.record("Model", "Camry", "F-150", 0.1)
        model.record("Make", "Toyota", "Honda", 0.5)
        return TupleSimilarity(toy_schema, uniform_ordering(toy_schema), model)

    @pytest.mark.parametrize("threshold", [0.0, 0.3, 0.5, 0.7, 0.95])
    def test_kept_scores_are_exact_and_skips_are_sound(
        self, scorer, indexed_scorer, threshold
    ):
        bindings = {"Make": "Toyota", "Model": "Camry", "Price": 10000}
        for similarity in (scorer, indexed_scorer):
            exact = similarity.bindings_scorer(bindings)
            bounded = similarity.bounded_scorer(bindings, threshold)
            for row in self.ROWS:
                maybe = bounded.score_above(row)
                if maybe is None:
                    # A skip is a proof the row cannot clear the bar.
                    assert exact(row) <= threshold
                else:
                    assert maybe == exact(row)

    def test_indexed_caps_actually_skip(self, indexed_scorer):
        # Make=Ford has no mined pairs, so its cap is 0 with the index:
        # a non-Ford row can score at most the Model+Price terms.
        bounded = indexed_scorer.bounded_scorer(
            {"Make": "Ford", "Model": "Camry", "Price": 10000}, 0.9
        )
        assert bounded.score_above(("Toyota", "Camry", 10000, 2000)) is None

    def test_bounded_row_scorer_matches_row_scorer(self, indexed_scorer):
        reference = ("Toyota", "Camry", 10000, 2000)
        exact = indexed_scorer.row_scorer(reference)
        bounded = indexed_scorer.bounded_row_scorer(reference, 0.4)
        for row in self.ROWS:
            maybe = bounded.score_above(row)
            if maybe is None:
                assert exact(row) <= 0.4
            else:
                assert maybe == exact(row)
