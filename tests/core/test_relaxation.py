"""Unit tests for relaxation strategies and tuple-as-query building."""

import pytest

from repro.core.attribute_order import uniform_ordering
from repro.core.relaxation import (
    GuidedRelax,
    RandomRelax,
    ordered_subsets,
    tuple_as_query,
)
from repro.db.predicates import Between, Eq


def make_ordering(schema, order):
    base = uniform_ordering(schema)
    uniform = 1.0 / len(order)
    return type(base)(
        relaxation_order=tuple(order),
        importance={name: uniform for name in order},
        deciding=(),
        dependent=tuple(order),
        best_key=None,
        decides_weight={},
        depends_weight={name: 0.0 for name in order},
    )


class TestTupleAsQuery:
    def test_binds_all_non_null(self, toy_schema):
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        assert query.bound_attributes == ("Make", "Model", "Price", "Year")
        assert all(isinstance(p, Eq) for p in query)

    def test_null_skipped(self, toy_schema):
        query = tuple_as_query(("Ford", None, 7000, 2001), toy_schema)
        assert "Model" not in query.bound_attributes

    def test_numeric_band(self, toy_schema):
        query = tuple_as_query(
            ("Ford", "Focus", 7000, 2001), toy_schema, numeric_band=0.1
        )
        price_predicates = query.predicates_on("Price")
        assert isinstance(price_predicates[0], Between)
        assert price_predicates[0].low == pytest.approx(6300)
        assert price_predicates[0].high == pytest.approx(7700)
        # Categorical bindings stay equalities.
        assert isinstance(query.predicates_on("Make")[0], Eq)

    def test_zero_value_band(self, toy_schema):
        query = tuple_as_query(("Ford", "Focus", 0, 2001), toy_schema, 0.1)
        predicate = query.predicates_on("Price")[0]
        assert predicate.matches(0)

    def test_negative_band_rejected(self, toy_schema):
        with pytest.raises(ValueError):
            tuple_as_query(("Ford", "Focus", 1, 2), toy_schema, numeric_band=-1)


class TestOrderedSubsets:
    def test_paper_worked_example(self):
        order = ["a1", "a3", "a4", "a2"]
        pairs = list(ordered_subsets(order, 2))
        assert pairs == [
            ("a1", "a3"),
            ("a1", "a4"),
            ("a1", "a2"),
            ("a3", "a4"),
            ("a3", "a2"),
            ("a4", "a2"),
        ]

    def test_level_one(self):
        assert list(ordered_subsets(["x", "y"], 1)) == [("x",), ("y",)]


class TestGuidedRelax:
    def test_least_important_relaxed_first(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        steps = list(strategy.relaxation_steps(query, max_level=1))
        assert steps[0].relaxed_attributes == ("Year",)
        assert steps[-1].relaxed_attributes == ("Make",)

    def test_levels_ascend(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        levels = [s.level for s in strategy.relaxation_steps(query, max_level=3)]
        assert levels == sorted(levels)
        assert max(levels) == 3

    def test_never_relaxes_everything(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        for step in strategy.relaxation_steps(query, max_level=10):
            assert len(step.query) >= 1

    def test_single_bound_attribute_yields_nothing(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", None, None, None), toy_schema)
        assert list(strategy.relaxation_steps(query, max_level=3)) == []

    def test_unknown_attributes_relax_first(self, toy_schema):
        # Ordering only knows Model and Make; Price/Year relax first.
        ordering = make_ordering(toy_schema, ["Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        first = next(iter(strategy.relaxation_steps(query, max_level=1)))
        assert first.relaxed_attributes[0] in ("Price", "Year")

    def test_relaxed_query_drops_bindings(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        strategy = GuidedRelax(ordering)
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        step = next(iter(strategy.relaxation_steps(query, max_level=1)))
        assert "Year" not in step.query.bound_attributes
        assert set(step.query.bound_attributes) == {"Make", "Model", "Price"}

    def test_describe(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        step = next(
            iter(
                GuidedRelax(ordering).relaxation_steps(
                    tuple_as_query(("Ford", "Focus", 1, 2), toy_schema), 1
                )
            )
        )
        assert "level 1" in step.describe()


class TestRandomRelax:
    def test_deterministic_for_seed(self, toy_schema):
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        a = [
            s.relaxed_attributes
            for s in RandomRelax(seed=3).relaxation_steps(query, 3)
        ]
        b = [
            s.relaxed_attributes
            for s in RandomRelax(seed=3).relaxation_steps(query, 3)
        ]
        assert a == b

    def test_different_seeds_differ(self, toy_schema):
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        a = [
            s.relaxed_attributes
            for s in RandomRelax(seed=1).relaxation_steps(query, 3)
        ]
        b = [
            s.relaxed_attributes
            for s in RandomRelax(seed=2).relaxation_steps(query, 3)
        ]
        assert a != b

    def test_covers_same_subsets_as_guided(self, toy_schema):
        ordering = make_ordering(toy_schema, ["Year", "Price", "Model", "Make"])
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        guided = {
            frozenset(s.relaxed_attributes)
            for s in GuidedRelax(ordering).relaxation_steps(query, 2)
        }
        randomised = {
            frozenset(s.relaxed_attributes)
            for s in RandomRelax(seed=0).relaxation_steps(query, 2)
        }
        assert guided == randomised

    def test_not_level_ordered(self, toy_schema):
        """The arbitrary user mixes subset sizes (global shuffle)."""
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        differs = False
        for seed in range(5):
            levels = [
                s.level for s in RandomRelax(seed=seed).relaxation_steps(query, 3)
            ]
            if levels != sorted(levels):
                differs = True
                break
        assert differs

    def test_never_relaxes_everything(self, toy_schema):
        query = tuple_as_query(("Ford", "Focus", 7000, 2001), toy_schema)
        for step in RandomRelax(seed=0).relaxation_steps(query, 10):
            assert len(step.query) >= 1

    def test_single_bound_attribute_yields_nothing(self, toy_schema):
        query = tuple_as_query(("Ford", None, None, None), toy_schema)
        assert list(RandomRelax(seed=0).relaxation_steps(query, 3)) == []
