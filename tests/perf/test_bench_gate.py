"""Unit tests for the committed-baseline gate and the history trail.

These run on hand-built report dicts — no benchmark execution — so the
gate's decay arithmetic, scale-mismatch refusal, and skip rules are
pinned independently of how fast the machine happens to be.
"""

import json
from pathlib import Path

from repro.perf import append_history, check_baseline, load_report

REPO_ROOT = Path(__file__).resolve().parents[2]


def _report(scale="smoke", **scenarios):
    return {
        "scale": scale,
        "python": "3.x",
        "scenarios": {
            name: {"speedup": speedup, "equivalent": equivalent}
            for name, (speedup, equivalent) in scenarios.items()
        },
    }


def test_baseline_passes_when_speedups_hold():
    baseline = _report(a=(2.0, True), b=(1.5, True))
    report = _report(a=(1.9, True), b=(1.7, True))
    assert check_baseline(report, baseline) == []


def test_baseline_fails_on_speedup_decay():
    baseline = _report(a=(2.0, True))
    report = _report(a=(1.2, True))
    failures = check_baseline(report, baseline, max_regression=0.25)
    assert len(failures) == 1
    assert "a" in failures[0]
    assert "decayed" in failures[0]


def test_baseline_tolerates_decay_within_max_regression():
    baseline = _report(a=(2.0, True))
    # Floor is 2.0 / 1.25 = 1.6; exactly at the floor passes.
    assert check_baseline(_report(a=(1.6, True)), baseline) == []
    assert check_baseline(_report(a=(1.59, True)), baseline) != []


def test_baseline_fails_when_equivalence_is_lost():
    baseline = _report(a=(2.0, True))
    report = _report(a=(3.0, False))
    failures = check_baseline(report, baseline)
    assert len(failures) == 1
    assert "no longer equivalent" in failures[0]


def test_baseline_skips_new_and_non_equivalent_baseline_scenarios():
    baseline = _report(flaky=(2.0, False))
    report = _report(flaky=(0.1, False), brand_new=(0.1, True))
    assert check_baseline(report, baseline) == []


def test_baseline_refuses_scale_mismatch():
    baseline = _report(scale="default", a=(2.0, True))
    report = _report(scale="smoke", a=(2.0, True))
    failures = check_baseline(report, baseline)
    assert len(failures) == 1
    assert "scale mismatch" in failures[0]


def test_append_history_writes_one_compact_line_per_run(tmp_path):
    path = tmp_path / "history.jsonl"
    first = _report(a=(2.0, True))
    second = _report(a=(2.1, True), b=(1.4, False))
    append_history(first, str(path))
    appended = append_history(second, str(path))
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    last = json.loads(lines[1])
    assert last == appended
    assert last["scale"] == "smoke"
    assert last["scenarios"]["b"] == {"speedup": 1.4, "equivalent": False}
    # Timings are deliberately not recorded — only the portable ratios.
    assert "results" not in last


def test_load_report_round_trips(tmp_path):
    path = tmp_path / "report.json"
    report = _report(a=(2.0, True))
    path.write_text(json.dumps(report), encoding="utf-8")
    assert load_report(str(path)) == report


def test_committed_baseline_matches_the_gate_scale():
    # The CI gate runs at smoke scale; a baseline committed at any
    # other scale would make every CI run fail on the mismatch refusal.
    baseline = load_report(str(REPO_ROOT / "BENCH_perf.json"))
    assert baseline["scale"] == "smoke"
    for name, entry in baseline["scenarios"].items():
        assert entry["equivalent"], name
