"""Fast-path equivalence properties.

The performance layer's contract is that every fast path is *result
equivalent* to its reference path:

* answering with the probe cache on returns the identical
  :class:`AnswerSet`; only the probe accounting differs;
* the VSim prune bound never drops a pair the naive loop would have
  stored, at any store threshold;
* parallel mining (``workers > 1``) produces the identical
  :class:`SimilarityModel` as the serial pass.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model
from repro.core.query import ImpreciseQuery
from repro.datasets.cardb import generate_cardb
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.simmining.estimator import SimilarityMinerConfig, ValueSimilarityMiner

# -- shared helpers ---------------------------------------------------------


def _random_table(
    rng: random.Random, n_attributes: int, n_values: int, n_rows: int
) -> Table:
    """All-categorical table with Zipf-skewed value frequencies."""
    names = tuple(f"A{index}" for index in range(n_attributes))
    schema = RelationSchema.build(
        "prop", categorical=names, numeric=(), order=names
    )
    domains = [
        [f"{name}_{value}" for value in range(n_values)] for name in names
    ]
    weights = [1.0 / (rank + 1) for rank in range(n_values)]
    table = Table(schema)
    for _ in range(n_rows):
        table.insert(
            tuple(
                rng.choices(domain, weights=weights, k=1)[0]
                for domain in domains
            )
        )
    return table


def _random_importance(rng: random.Random, n_attributes: int) -> dict[str, float]:
    """Random non-negative weights; some attributes get exactly zero."""
    return {
        f"A{index}": rng.random() if rng.random() < 0.8 else 0.0
        for index in range(n_attributes)
    }


def _model_state(model):
    return (
        {name: model.pairs(name) for name in model.attributes},
        {name: model.known_values(name) for name in model.attributes},
    )


# -- property 1: probe cache on/off -----------------------------------------


@pytest.fixture(scope="module")
def cache_setup():
    webdb = AutonomousWebDatabase(generate_cardb(1200, seed=5))
    model = build_model(
        webdb,
        sample_size=400,
        rng=random.Random(6),
        settings=AIMQSettings(max_relaxation_level=3),
    )
    webdb.reset_accounting()
    return webdb, model


def _sample_queries(webdb, model, count: int) -> list[ImpreciseQuery]:
    schema = webdb.schema
    sample = model.sample
    queries = []
    for index in range(count):
        row = sample.row((index * 97) % len(sample))
        bindings = {
            name: row[schema.position(name)]
            for name in ("Model", "Price", "Location")
            if row[schema.position(name)] is not None
        }
        queries.append(ImpreciseQuery.like(schema.name, **bindings))
    return queries


def test_probe_cache_preserves_answer_sets(cache_setup):
    webdb, model = cache_setup
    engine = model.engine(webdb)
    for query in _sample_queries(webdb, model, 4):
        webdb.disable_probe_cache()
        cold = engine.answer(query)
        webdb.enable_probe_cache()
        try:
            warm = engine.answer(query)
            hot = engine.answer(query)
        finally:
            webdb.disable_probe_cache()

        # Identical answers: same tuples, same scores, same order.
        assert cold.answers == warm.answers
        assert cold.answers == hot.answers
        # Only the probe accounting differs: with the cache off nothing
        # is ever served from it, with it on the same lookups happen
        # but repeats stop reaching the source.
        assert cold.trace.probes_cached == 0
        assert warm.trace.total_lookups == cold.trace.queries_issued
        assert hot.trace.total_lookups == cold.trace.queries_issued
        assert hot.trace.probes_cached > 0
        assert hot.trace.queries_issued < cold.trace.queries_issued


# -- property 2: prune bound never drops a stored pair -----------------------


@given(
    seed=st.integers(0, 2**32 - 1),
    threshold=st.floats(0.0, 0.95, allow_nan=False),
    bag_semantics=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_prune_bound_never_drops_pairs(seed, threshold, bag_semantics):
    rng = random.Random(seed)
    table = _random_table(rng, n_attributes=3, n_values=8, n_rows=60)
    importance = _random_importance(rng, 3)
    naive = ValueSimilarityMiner(
        SimilarityMinerConfig(
            min_value_count=1,
            store_threshold=threshold,
            bag_semantics=bag_semantics,
        ),
        importance_weights=importance,
    ).mine(table)
    pruned = ValueSimilarityMiner(
        SimilarityMinerConfig(
            min_value_count=1,
            store_threshold=threshold,
            bag_semantics=bag_semantics,
            prune_bound=True,
        ),
        importance_weights=importance,
    ).mine(table)
    assert _model_state(naive) == _model_state(pruned)


# -- property 3: parallel workers match the serial pass ----------------------


@given(
    seed=st.integers(0, 2**32 - 1),
    threshold=st.floats(0.0, 0.9, allow_nan=False),
)
@settings(max_examples=6, deadline=None)
def test_parallel_workers_match_serial(seed, threshold):
    rng = random.Random(seed)
    table = _random_table(rng, n_attributes=3, n_values=6, n_rows=40)
    importance = _random_importance(rng, 3)
    serial = ValueSimilarityMiner(
        SimilarityMinerConfig(min_value_count=1, store_threshold=threshold),
        importance_weights=importance,
    ).mine(table)
    parallel = ValueSimilarityMiner(
        SimilarityMinerConfig(
            min_value_count=1,
            store_threshold=threshold,
            workers=2,
            parallel_chunk_pairs=7,
        ),
        importance_weights=importance,
    ).mine(table)
    assert _model_state(serial) == _model_state(parallel)


def test_parallel_with_prune_matches_serial_naive():
    rng = random.Random(99)
    table = _random_table(rng, n_attributes=4, n_values=10, n_rows=120)
    serial = ValueSimilarityMiner(
        SimilarityMinerConfig(min_value_count=1, store_threshold=0.4)
    ).mine(table)
    combined = ValueSimilarityMiner(
        SimilarityMinerConfig(
            min_value_count=1,
            store_threshold=0.4,
            workers=2,
            prune_bound=True,
            parallel_chunk_pairs=11,
        )
    ).mine(table)
    assert _model_state(serial) == _model_state(combined)


# -- obs_overhead scenario ---------------------------------------------------


def test_obs_overhead_scenario_proves_bit_identity():
    """events/tracing on never changes an answer, and both get recorded."""
    from repro.obs import OBS
    from repro.perf.bench import BenchScale, _Fixture, bench_obs_overhead

    scale = BenchScale(
        rows=300,
        sample=100,
        repeats=1,
        queries=1,
        mining_rows=100,
        mining_values=10,
        mining_attributes=3,
        mining_threshold=0.2,
        candidates=100,
        top_k=5,
        score_rows=50,
        score_repeats=1,
        partition_rows=100,
        partition_products=2,
    )
    result = bench_obs_overhead(scale, _Fixture(scale))
    assert result.name == "obs_overhead"
    assert result.equivalent is True
    assert result.details["events_recorded"] >= 1
    assert result.details["traces_recorded"] >= 1
    # The scenario restores the global runtime to the disabled posture.
    assert OBS.enabled is False
    assert OBS.events.enabled is False
