"""Shared fixtures: tiny deterministic relations used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets.cardb import generate_cardb
from repro.datasets.census import generate_censusdb
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase


@pytest.fixture()
def toy_schema() -> RelationSchema:
    """A 4-attribute schema mixing categorical and numeric kinds."""
    return RelationSchema.build(
        "Cars",
        categorical=("Make", "Model"),
        numeric=("Price", "Year"),
        order=("Make", "Model", "Price", "Year"),
    )


TOY_ROWS = [
    ("Toyota", "Camry", 10000, 2000),
    ("Toyota", "Camry", 10500, 2001),
    ("Toyota", "Corolla", 8000, 2000),
    ("Honda", "Accord", 9800, 2000),
    ("Honda", "Accord", 15000, 2004),
    ("Honda", "Civic", 7500, 1999),
    ("Ford", "Focus", 7000, 2001),
    ("Ford", "F-150", 17000, 2003),
]


@pytest.fixture()
def toy_table(toy_schema: RelationSchema) -> Table:
    table = Table(toy_schema)
    table.extend(TOY_ROWS)
    return table


@pytest.fixture()
def toy_webdb(toy_table: Table) -> AutonomousWebDatabase:
    return AutonomousWebDatabase(toy_table)


@pytest.fixture(scope="session")
def car_table() -> Table:
    """A 3000-row CarDB instance shared (read-only!) across tests."""
    return generate_cardb(3000, seed=7)


@pytest.fixture(scope="session")
def car_webdb(car_table: Table) -> AutonomousWebDatabase:
    return AutonomousWebDatabase(car_table)


@pytest.fixture(scope="session")
def census_data() -> tuple[Table, list[str]]:
    """A 2500-row CensusDB instance plus labels (read-only!)."""
    return generate_censusdb(2500, seed=11)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
