"""Golden-fixture tests: every rule fires on its bad twin, not its good one."""

from pathlib import Path

import pytest

from repro.analysis import LintEngine, all_rules, load_project, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "REP001": ("rep001_bad.py", "rep001_good.py"),
    "REP002": ("rep002_bad.py", "rep002_good.py"),
    "REP003": ("rep003_bad", "rep003_good"),
    "REP004": ("rep004_bad.py", "rep004_good.py"),
    "REP005": ("rep005_bad.py", "rep005_good.py"),
    "REP006": ("rep006_bad.py", "rep006_good.py"),
    "REP007": ("rep007_bad.py", "rep007_good.py"),
    "REP008": ("rep008_bad.py", "rep008_good.py"),
    "REP009": ("rep009_bad.py", "rep009_good.py"),
    "REP010": ("rep010_bad.py", "rep010_good.py"),
}


def run_rule(rule_id: str, target: Path):
    engine = LintEngine(all_rules([rule_id]))
    return engine.run([target])


def test_every_shipped_rule_has_a_fixture_pair():
    assert set(RULE_FIXTURES) == set(rule_ids())
    for bad, good in RULE_FIXTURES.values():
        assert (FIXTURES / bad).exists()
        assert (FIXTURES / good).exists()


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_bad_fixture_triggers_rule(rule_id):
    bad, _ = RULE_FIXTURES[rule_id]
    run = run_rule(rule_id, FIXTURES / bad)
    assert run.findings, f"{rule_id} found nothing in {bad}"
    assert {f.rule_id for f in run.findings} == {rule_id}
    for finding in run.findings:
        assert finding.line > 0
        assert finding.message
        assert finding.hint


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_good_fixture_is_clean_under_all_rules(rule_id):
    _, good = RULE_FIXTURES[rule_id]
    engine = LintEngine()
    run = engine.run([FIXTURES / good])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep001_reports_each_violation_kind():
    run = run_rule("REP001", FIXTURES / "rep001_bad.py")
    messages = " ".join(f.message for f in run.findings)
    assert "iterating a set" in messages
    assert "random" in messages
    assert "wall-clock" in messages


def test_rep001_flags_posting_set_traversal():
    # The inverted-index idiom: partner sets gathered from posting
    # lists must be sorted before they feed an ordered pair list.
    run = run_rule("REP001", FIXTURES / "rep001_bad.py")
    set_iterations = [
        f for f in run.findings if "iterating a set" in f.message
    ]
    assert len(set_iterations) == 2  # the ranked() loop + the posting loop


def test_rep003_reports_facade_and_cycle():
    run = run_rule("REP003", FIXTURES / "rep003_bad")
    messages = " ".join(f.message for f in run.findings)
    assert "facade" in messages
    assert "cycle" in messages
    assert "upward import" in messages


def test_rep003_flags_core_importing_serve():
    run = run_rule("REP003", FIXTURES / "rep003_serve_bad")
    assert run.findings, "core -> serve import was not flagged"
    messages = " ".join(f.message for f in run.findings)
    assert "upward import" in messages
    assert "repro.core (layer 4)" in messages
    assert "repro.serve.admission (layer 6)" in messages


def test_rep003_serve_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep003_serve_good"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep003_flags_simmining_importing_core():
    run = run_rule("REP003", FIXTURES / "rep003_simmining_bad")
    assert run.findings, "simmining -> core import was not flagged"
    messages = " ".join(f.message for f in run.findings)
    assert "upward import" in messages
    assert "repro.simmining (layer 2)" in messages
    assert "repro.core.engine (layer 4)" in messages


def test_rep003_simmining_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep003_simmining_good"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep006_flags_retry_loops_swallowing_permanent_errors():
    run = run_rule("REP006", FIXTURES / "rep006_retry_bad.py")
    assert len(run.findings) == 2
    messages = " ".join(f.message for f in run.findings)
    assert "retry loop" in messages
    assert "QueryError" in messages
    assert "ProbeLimitExceededError" in messages


def test_rep006_retry_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep006_retry_good.py"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep004_flags_probelog_fabrication():
    run = run_rule("REP004", FIXTURES / "rep004_fabricate_bad.py")
    assert len(run.findings) == 5
    messages = " ".join(f.message for f in run.findings)
    assert "ProbeLog.record()" in messages
    assert "ProbeLog.record_cache_hit()" in messages
    assert "ProbeLog.record_count()" in messages
    assert "mutation of ProbeLog.probes_issued" in messages
    assert "probes_subsumed" in messages


def test_rep004_fabricate_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep004_fabricate_good.py"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep004_flags_columnar_internals():
    run = run_rule("REP004", FIXTURES / "rep004_columnar_bad.py")
    messages = " ".join(f.message for f in run.findings)
    assert "repro.db.columns" in messages
    assert "repro.db.vectorized" in messages
    for attr in ("_store", "_zone_maps", "_columns", "_shards", "_global_ids"):
        assert f"({attr})" in messages
    # Two forbidden imports plus five private-internal accesses.
    assert len(run.findings) == 7


def test_rep004_columnar_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep004_columnar_good.py"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep005_flags_event_hygiene_violations():
    run = run_rule("REP005", FIXTURES / "rep005_events_bad.py")
    assert len(run.findings) == 6
    messages = " ".join(f.message for f in run.findings)
    assert "'Engine.Answer'" in messages
    assert "'answer'" in messages
    assert "constant string" in messages
    assert "'probesIssued'" in messages
    assert "'Total'" in messages
    assert "ad-hoc wide event" in messages


def test_rep005_events_good_fixture_is_clean_under_all_rules():
    run = LintEngine().run([FIXTURES / "rep005_events_good.py"])
    assert run.findings == [], [f.render() for f in run.findings]


def test_rep007_reports_unguarded_and_escaping_writes():
    run = run_rule("REP007", FIXTURES / "rep007_bad.py")
    messages = " ".join(f.message for f in run.findings)
    assert "'_budget'" in messages
    assert "'_issued'" in messages
    assert "no lock held" in messages
    assert "worker thread" in messages


def test_rep008_names_the_conflicting_site():
    run = run_rule("REP008", FIXTURES / "rep008_bad.py")
    assert len(run.findings) == 2
    messages = " ".join(f.message for f in run.findings)
    assert "_CACHE_LOCK" in messages
    assert "_STATS_LOCK" in messages
    assert "opposite order" in messages
    assert "deadlock" in messages


def test_rep009_labels_each_blocking_kind():
    run = run_rule("REP009", FIXTURES / "rep009_bad.py")
    messages = " ".join(f.message for f in run.findings)
    assert "probe dispatch 'webdb.query()'" in messages
    assert "time.sleep()" in messages
    assert "executor '.submit()'" in messages
    assert "executor '.result()'" in messages


def test_rep010_reports_payload_and_callable_crossings():
    run = run_rule("REP010", FIXTURES / "rep010_bad.py")
    assert len(run.findings) == 2
    messages = " ".join(f.message for f in run.findings)
    assert "EventLog" in messages
    assert "RelaxationTrace" in messages
    assert "argument payload" in messages
    assert "as the callable" in messages


def test_sharded_scatter_gather_suppressions_are_intentional():
    import repro

    package = Path(repro.__file__).resolve().parent
    run = LintEngine(all_rules(["REP009"])).run([package / "db"])
    assert run.findings == [], [f.render() for f in run.findings]
    assert {f.rule_id for f in run.suppressed} == {"REP009"}
    assert len(run.suppressed) == 2


def test_suppression_comment_silences_a_finding(tmp_path):
    source = FIXTURES / "rep006_bad.py"
    patched = tmp_path / "patched.py"
    text = source.read_text(encoding="utf-8").replace(
        "    except Exception:",
        "    except Exception:  # reprolint: disable=REP006",
    )
    patched.write_text(text, encoding="utf-8")
    run = LintEngine(all_rules(["REP006"])).run([patched])
    assert len(run.suppressed) == 1
    assert len(run.findings) == 1  # the bare except is still reported


def test_unknown_rule_id_is_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        all_rules(["REP999"])


def test_parse_error_becomes_rep000_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n", encoding="utf-8")
    run = LintEngine().run([broken])
    assert [f.rule_id for f in run.findings] == ["REP000"]
    assert run.findings[0].severity.value == "error"


def test_repo_source_tree_is_clean():
    import repro

    package = Path(repro.__file__).resolve().parent
    run = LintEngine().run([package])
    assert run.findings == [], [f.render() for f in run.findings]


def test_module_names_derive_from_repro_root():
    project = load_project([FIXTURES / "rep003_bad"])
    names = sorted(m.module for m in project.modules)
    assert names == ["repro.core.engine", "repro.db.table"]
