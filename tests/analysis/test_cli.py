"""CLI contract: exit codes, JSON schema, --self, baseline flags."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = [
    "rep001_bad.py",
    "rep002_bad.py",
    "rep003_bad",
    "rep004_bad.py",
    "rep005_bad.py",
    "rep006_bad.py",
]

FINDING_KEYS = {
    "rule",
    "severity",
    "path",
    "line",
    "column",
    "message",
    "hint",
    "snippet",
}


@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_each_bad_fixture_fails_the_lint(fixture):
    assert main(["lint", "--no-baseline", str(FIXTURES / fixture)]) == 1


def test_repo_lints_clean_with_committed_baseline():
    assert main(["lint"]) == 0


def test_self_check_passes():
    assert main(["lint", "--self"]) == 0


def test_json_output_schema(capsys):
    code = main(
        ["lint", "--no-baseline", "--format", "json", str(FIXTURES / "rep002_bad.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert set(payload["rules_run"]) == {
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
        "REP009",
        "REP010",
    }
    assert payload["findings"], "expected findings for the bad fixture"
    for finding in payload["findings"]:
        assert set(finding) == FINDING_KEYS
        assert finding["rule"] == "REP002"
        assert finding["severity"] in ("warning", "error")
        assert finding["line"] > 0
    summary = payload["summary"]
    assert summary["total"] == len(payload["findings"])
    assert summary["by_rule"] == {"REP002": summary["total"]}


def test_rules_flag_limits_the_rule_set(capsys):
    code = main(
        [
            "lint",
            "--no-baseline",
            "--rules",
            "REP006",
            "--format",
            "json",
            str(FIXTURES / "rep002_bad.py"),
        ]
    )
    assert code == 0  # REP002 violations invisible to a REP006-only run
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["REP006"]
    assert payload["findings"] == []


def test_unknown_rule_is_a_usage_error():
    assert main(["lint", "--rules", "REP999"]) == 2


def test_missing_target_is_a_usage_error(tmp_path):
    assert main(["lint", str(tmp_path / "nope.py")]) == 2


def test_fail_on_never_reports_but_exits_zero(capsys):
    code = main(
        [
            "lint",
            "--no-baseline",
            "--fail-on",
            "never",
            str(FIXTURES / "rep006_bad.py"),
        ]
    )
    assert code == 0
    assert "REP006" in capsys.readouterr().out


def test_sarif_output_is_valid_and_anchored(capsys):
    code = main(
        [
            "lint",
            "--no-baseline",
            "--format",
            "sarif",
            "--fail-on",
            "never",
            str(FIXTURES / "rep009_bad.py"),
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert "sarif-2.1.0" in doc["$schema"]
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    assert {rule["id"] for rule in driver["rules"]} >= {"REP009"}
    assert run["results"], "expected SARIF results for the bad fixture"
    for result in run["results"]:
        assert result["ruleId"] == "REP009"
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("rep009_bad.py")
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["reprolint/contentKey"]


def _git(repo: Path, *args: str) -> None:
    import subprocess

    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
        },
    )


def test_changed_mode_reports_only_changed_files(tmp_path, capsys):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "--quiet")
    committed = repo / "committed.py"
    committed.write_text(
        (FIXTURES / "rep006_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    _git(repo, "add", "committed.py")
    _git(repo, "commit", "--quiet", "-m", "seed")
    # An untracked new file with its own violations.
    fresh = repo / "fresh.py"
    fresh.write_text(
        (FIXTURES / "rep002_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    code = main(
        ["lint", "--no-baseline", "--changed", "--format", "json", str(repo)]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    paths = {finding["path"] for finding in payload["findings"]}
    # committed.py is unchanged vs HEAD: analysed, but not reported.
    assert paths == {"fresh.py"}


def test_changed_mode_outside_git_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "lone.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code = main(["lint", "--no-baseline", "--changed", str(target)])
    out = capsys.readouterr().out
    if code == 2:
        assert "git" in out
    else:
        # The tmp dir may sit inside an enclosing work tree; then the
        # run degrades to an ordinary (restricted) lint.
        assert code in (0, 1)


def test_full_repo_lint_stays_fast():
    import time

    from repro.analysis import LintEngine
    from repro.analysis.cli import default_target

    start = time.monotonic()
    LintEngine().run([default_target()])
    elapsed = time.monotonic() - start
    # CI budget is 15s for the whole job step; leave headroom here.
    assert elapsed < 15.0, f"full-repo lint took {elapsed:.1f}s"


def test_write_baseline_then_clean_run(tmp_path, capsys):
    target = tmp_path / "rep001_bad.py"
    target.write_text(
        (FIXTURES / "rep001_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    baseline = tmp_path / "accepted.json"
    assert (
        main(
            [
                "lint",
                "--write-baseline",
                "--baseline",
                str(baseline),
                str(target),
            ]
        )
        == 0
    )
    assert baseline.exists()
    capsys.readouterr()
    assert main(["lint", "--baseline", str(baseline), str(target)]) == 0
    assert "baselined" in capsys.readouterr().out
