"""Golden fixture: violates REP002 (exact equality on computed floats)."""


def same_score(a: float, b: float) -> bool:
    return a == b


def ratio_changed(part: float, total: float) -> bool:
    return part / total != 0.5
