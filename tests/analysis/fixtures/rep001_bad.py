"""Golden fixture: violates REP001 (nondeterministic ranked output)."""

import random
import time


def ranked(values):
    pool = {value for value in values}
    out = []
    for item in pool:  # set iteration feeding an ordered list
        out.append(item)
    out.sort(key=lambda _: random.random())  # global unseeded RNG
    stamp = time.time()  # wall clock in a scoring path
    return out, stamp


def posting_candidates(postings):
    partners = set()
    for value, _count in postings:
        partners.add(value)
    pairs = []
    for partner in partners:  # posting traversal must not follow set order
        pairs.append(partner)
    return pairs
