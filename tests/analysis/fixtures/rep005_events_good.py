"""Golden fixture: the REP005-clean version of rep005_events_bad."""

import json

from repro.obs import OBS


def emit(payload):
    OBS.emit_event("engine.answer", probes_issued=3, total_seconds=0.25)
    OBS.events.emit("db.probe", rows=3, from_cache=False)
    # Serialising an arbitrary payload is fine; only literal dicts
    # carrying an "event" key count as ad-hoc wide events.
    return json.dumps(payload)
