"""Golden fixture: the retry-hygiene-clean version of rep006_retry_bad."""

from repro.db.errors import (
    ProbeLimitExceededError,
    QueryError,
    TransientSourceError,
)


def fetch_with_retries(webdb, query, attempts):
    for _ in range(attempts):
        try:
            return webdb.query(query)
        except TransientSourceError:
            continue  # retriable by definition: the transient taxonomy
    raise TransientSourceError("source kept failing")


def drain(webdb, queries, report):
    pages = []
    for query in queries:
        try:
            pages.append(webdb.query(query))
        except ProbeLimitExceededError:
            raise  # permanent: surface it
        except QueryError as exc:  # permanent, but recorded
            report.append(exc)
    return pages
