"""Golden fixture: the REP004-clean twin of rep004_columnar_bad.

Columnar storage is a private layout detail of ``repro.db``: callers
probe the facade (single-source or sharded) and every query lands in a
ProbeLog, whatever engine serves it underneath.
"""


def scan_through_facade(webdb, query):
    # The facade records the probe; the storage engine is invisible.
    return webdb.query(query).rows


def gather_from_shards(sharded, query):
    # The sharded facade scatters, gathers, and accounts one logical
    # probe; shard topology stays on its side of the interface.
    return sharded.query(query).rows


def inspect_plan_cost(window):
    # Work accounting flows out through the public stats channel.
    stats = window.execution_stats
    return (stats.rows_examined, stats.blocks_pruned)
