"""Golden fixture: the similarity index reaching up into the engine."""

from repro.core.engine import rank_candidates


def top_similar(value, n):
    return rank_candidates(value, n)
