"""Golden fixture: the engine side of the simmining -> core upward import."""


def rank_candidates(value, n):
    return [(value, n)]
