"""Golden fixture: the engine reaching up into the serving layer."""

from repro.serve.admission import AdmissionController


def answer_with_admission(config):
    return AdmissionController(config)
