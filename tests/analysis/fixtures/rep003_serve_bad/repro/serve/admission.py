"""Golden fixture: the admission side of the core -> serve upward import."""


class AdmissionController:
    def __init__(self, config):
        self.config = config
