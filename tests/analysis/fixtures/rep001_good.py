"""Golden fixture: the REP001-clean version of rep001_bad."""

import random
import time


def ranked(values, seed=7):
    rng = random.Random(seed)
    pool = {value for value in values}
    out = sorted(pool)  # deterministic order before any ranking
    rng.shuffle(out)  # seeded instance, reproducible
    duration = time.perf_counter()  # monotonic timer, not wall clock
    return out, duration


def posting_candidates(postings):
    partners = set()
    for value, _count in postings:
        partners.add(value)
    return sorted(partners)  # canonical order before emission
