"""Golden fixture: violates REP006 (broad handlers that swallow)."""


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        pass
    try:
        return path.read_text()
    except:  # noqa: E722
        return None
