"""Golden fixture: the REP006-clean version of rep006_bad."""


def load(path, log):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:  # narrow, and the failure is recorded
        log.warning("could not read %s: %s", path, exc)
        return None
