"""Golden fixture: the database layer importing nothing above itself."""


class Table:
    def __init__(self, schema):
        self.schema = schema
