"""Golden fixture: the engine using the repro.db facade, layers intact."""

from repro.db import Table


def materialise(schema):
    return Table(schema)
