"""Good: captures cross the boundary; the owner merges results back."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor


class EventLog:
    """Append-only ring; single-writer by design."""

    def __init__(self) -> None:
        self.rows: list[object] = []

    def append(self, row: object) -> None:
        self.rows.append(row)

    def snapshot(self) -> list[object]:
        return list(self.rows)


class RelaxationTrace:
    """Ordered relaxation steps; single-writer by design."""

    def __init__(self) -> None:
        self.steps: list[str] = []

    def extend(self, steps: list[str]) -> None:
        self.steps.extend(steps)


def _transform(job: object, seen: list[object]) -> object:
    return (job, len(seen))


def fan_out(jobs: list[object]) -> EventLog:
    events = EventLog()
    pool = ThreadPoolExecutor(max_workers=2)
    # Workers get an immutable capture; the owner thread appends.
    futures = [pool.submit(_transform, job, events.snapshot()) for job in jobs]
    pool.shutdown(wait=True)
    for future in futures:
        events.append(future.result())
    return events


def _collect(steps: list[str], sink: list[str]) -> None:
    sink.extend(steps)


def spawn_tracer(steps: list[str]) -> RelaxationTrace:
    trace = RelaxationTrace()
    sink: list[str] = []
    worker = threading.Thread(target=_collect, args=(steps, sink))
    worker.start()
    worker.join()
    trace.extend(sink)
    return trace
