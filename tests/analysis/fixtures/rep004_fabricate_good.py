"""Golden fixture: the REP004-clean twin of rep004_fabricate_bad.

Locally-answered queries are accounted where they belong — in the
trace's ``probes_subsumed`` — and real probes flow through the facade,
whose own ProbeLog does the recording.
"""


def answer_locally(trace, entry):
    trace.probes_subsumed += 1
    return entry


def issue_probe(webdb, query):
    # The facade records the probe; callers never touch the log.
    return webdb.query(query)


def report_progress(report, matches):
    # Collection reports carry their own counters; that is
    # measurement, not ProbeLog fabrication.
    report.probes_sampled += 1
    return matches
