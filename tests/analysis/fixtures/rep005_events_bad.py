"""Golden fixture: violates REP005's wide-event hygiene checks."""

import json

from repro.obs import OBS


def emit(name):
    OBS.emit_event("Engine.Answer", probes=3)  # event name not snake_case
    OBS.emit_event("answer", probes=3)  # no dotted namespace
    OBS.emit_event(name, probes=3)  # non-constant event name
    OBS.emit_event("engine.answer", probesIssued=3)  # camelCase field
    OBS.events.emit("engine.answer", Total=3)  # capitalised field
    # Ad-hoc wide event bypassing the ring buffer and validation.
    return json.dumps({"event": "engine.answer", "probes": 3})
