"""Good: snapshot under the lock, block only after releasing it."""

from __future__ import annotations

import threading


class SourceGateway:
    """Holds its lock for bookkeeping only, never across a probe."""

    def __init__(self, webdb: object) -> None:
        self._lock = threading.Lock()
        self._webdb = webdb
        self._tally = 0

    def probe(self, query: object) -> object:
        with self._lock:
            webdb = self._webdb
        result = webdb.query(query)
        with self._lock:
            self._tally += 1
        return result

    def wait_for(self, pool: object, job: object) -> object:
        future = pool.submit(job)
        return future.result()
