"""Golden fixture: fabricated ProbeLog accounting (REP004)."""

from repro.db.webdb import ProbeLog


def answer_locally(webdb, entry, result):
    # A planner that answers a subsumed query from a stored result and
    # then "corrects" the log so the issued count looks serial.
    webdb.log.record(result)
    webdb.log.probes_issued += 1
    return entry


def pretend_cache_hit(webdb):
    webdb.log.record_cache_hit()


def fake_count_probe(report, matches):
    report.record_count(matches)


def forge_log(results):
    log = ProbeLog()
    for result in results:
        log.record(result)
    return log
