"""Bad: live single-writer objects handed straight to worker threads."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor


class EventLog:
    """Append-only ring; single-writer by design."""

    def __init__(self) -> None:
        self.rows: list[object] = []

    def append(self, row: object) -> None:
        self.rows.append(row)


class RelaxationTrace:
    """Ordered relaxation steps; single-writer by design."""

    def __init__(self) -> None:
        self.steps: list[str] = []

    def extend(self, steps: list[str]) -> None:
        self.steps.extend(steps)


def _consume(job: object, events: EventLog) -> None:
    events.append(job)


def fan_out(jobs: list[object]) -> EventLog:
    events = EventLog()
    pool = ThreadPoolExecutor(max_workers=2)
    for job in jobs:
        # The live ring crosses the executor boundary with the job.
        pool.submit(_consume, job, events)
    pool.shutdown(wait=True)
    return events


def spawn_tracer(steps: list[str]) -> RelaxationTrace:
    trace = RelaxationTrace()
    # Bound method of a live trace becomes another thread's callable.
    worker = threading.Thread(target=trace.extend, args=(steps,))
    worker.start()
    worker.join()
    return trace
