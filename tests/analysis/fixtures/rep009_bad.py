"""Bad: slow operations run while the accounting lock is held."""

from __future__ import annotations

import threading
import time


class SourceGateway:
    """Serialises probes by holding its lock across the dispatch."""

    def __init__(self, webdb: object) -> None:
        self._lock = threading.Lock()
        self._webdb = webdb
        self._tally = 0

    def probe(self, query: object) -> object:
        with self._lock:
            webdb = self._webdb
            result = webdb.query(query)
            time.sleep(1)
            self._tally += 1
            return result

    def wait_for(self, pool: object, job: object) -> object:
        with self._lock:
            future = pool.submit(job)
            return future.result()
