"""Bad: two code paths acquire the same locks in opposite orders."""

from __future__ import annotations

import threading

_CACHE_LOCK = threading.Lock()
_STATS_LOCK = threading.Lock()


def refresh_cache(cache: dict, entries: dict, stats: dict) -> None:
    with _CACHE_LOCK:
        cache.update(entries)
        with _STATS_LOCK:
            stats["refreshes"] = stats.get("refreshes", 0) + 1


def publish_stats(cache: dict, stats: dict) -> dict:
    with _STATS_LOCK:
        snapshot = dict(stats)
        with _CACHE_LOCK:
            snapshot["cache_size"] = len(cache)
    return snapshot
