"""Golden fixture: the REP005-clean version of rep005_bad."""

from repro.obs import OBS


def record(registry):
    registry.counter("repro_db_probes_total").inc()
    registry.histogram("repro_db_probe_seconds").observe(0.1)
    with OBS.span("mining"):
        return registry
