"""Golden fixture: the REP002-clean version of rep002_bad."""

from repro.floats import close


def same_score(a: float, b: float) -> bool:
    return close(a, b)


def is_unset(score: float) -> bool:
    return score == 0.0  # literal-zero sentinel guard is exempt
