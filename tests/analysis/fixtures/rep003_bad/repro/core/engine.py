"""Golden fixture: the engine reaching around the repro.db facade."""

from repro.db.table import Table


def materialise(schema):
    return Table(schema)
