"""Golden fixture: an upward import closing a db <-> core cycle."""

from repro.core.engine import materialise


def rebuild(schema):
    return materialise(schema)
