"""Golden fixture: the REP004-clean version of rep004_bad."""

from repro.db import SelectionQuery


def count_rows(webdb):
    # Every probe goes through the facade, so the ProbeLog sees it.
    return webdb.probe_count(SelectionQuery.conjunction([]))
