"""Golden fixture: the data-plane side of the downward import."""


def posting_rows(values):
    return [(value, 1) for value in values]
