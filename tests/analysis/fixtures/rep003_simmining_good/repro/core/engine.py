"""Golden fixture: the engine consuming the index from above (downward)."""

from repro.simmining.index import build_postings


def rank_candidates(values):
    return build_postings(values)
