"""Golden fixture: the index imports downward into the data plane only."""

from repro.db.table import posting_rows


def build_postings(values):
    return posting_rows(sorted(values))
