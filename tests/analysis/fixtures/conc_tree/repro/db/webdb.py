"""Miniature locked facade: the webdb shape the lock model must see."""

from __future__ import annotations

import threading

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: dict[str, int] = {}


def register_source(name: str) -> int:
    with _REGISTRY_LOCK:
        _REGISTRY[name] = _REGISTRY.get(name, 0) + 1
        return _REGISTRY[name]


class MiniWebDB:
    """Accounting serialised by one RLock, the repo's facade idiom."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._issued = 0

    def query(self, predicate: str) -> list[str]:
        with self._lock:
            return self._query_locked(predicate)

    def _query_locked(self, predicate: str) -> list[str]:
        self._issued += 1
        return [predicate]

    @property
    def issued(self) -> int:
        with self._lock:
            return self._issued
