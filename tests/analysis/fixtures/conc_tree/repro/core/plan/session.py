"""Miniature plan session: the executor shape the escape model must see."""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from repro.db.webdb import MiniWebDB


def _score(chunk: list[str]) -> int:
    return len(chunk)


def build_session() -> "MiniSession":
    return MiniSession(MiniWebDB())


class MiniSession:
    """Dispatches probes through a thread pool, like PlanSession."""

    def __init__(self, webdb: MiniWebDB) -> None:
        self.webdb = webdb
        self._pool = ThreadPoolExecutor(max_workers=2)

    def prefetch(self, queries: list[str]) -> None:
        for query in queries:
            self._pool.submit(self._dispatch, query)

    def _dispatch(self, query: str) -> list[str]:
        return self._run_one(query)

    def _run_one(self, query: str) -> list[str]:
        return self.webdb.query(query)

    def drain_later(self, queries: list[str]) -> Future:
        def drain() -> list[list[str]]:
            return [self.webdb.query(query) for query in queries]

        return self._pool.submit(drain)

    def offline_scores(self, chunks: list[list[str]]) -> list[int]:
        # Process pools cross a *process* boundary: no thread escape.
        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(_score, chunks))
