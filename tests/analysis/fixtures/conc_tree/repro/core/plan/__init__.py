"""Miniature tree for concurrency-substrate tests."""
