"""Golden fixture: violates REP005 (metric naming, hand-entered span)."""

from repro.obs import OBS


def record(registry):
    registry.counter("probes").inc()  # no repro_ prefix, no unit
    registry.counter("repro_db_probe_seconds").inc()  # counter, not _total
    span = OBS.span("mining")
    span.__enter__()  # leaks if the body raises
    return span
