"""Golden fixture: retry loops that swallow permanent database errors."""

from repro.db.errors import ProbeLimitExceededError, QueryError


def fetch_forever(webdb, query):
    while True:
        try:
            return webdb.query(query)
        except QueryError:
            continue  # a malformed query never becomes well-formed


def drain(webdb, queries):
    pages = []
    for query in queries:
        try:
            pages.append(webdb.query(query))
        except (ProbeLimitExceededError, QueryError):
            pass  # the budget will not refill mid-loop
    return pages
