"""Golden fixture: violates REP004 (probes that dodge the ProbeLog)."""

from repro.db.executor import Executor


def count_rows(webdb):
    executor = Executor(webdb._table)  # private internals, no accounting
    return len(webdb._table._rows), executor
