"""Bad: shared counters mutated outside the guard that protects them."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor


class ProbeAccounting:
    """Budgeted probe counter with a declared lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._issued = 0
        self._budget = 100

    def charge(self) -> bool:
        with self._lock:
            if self._issued >= self._budget:
                return False
            self._issued += 1
            return True

    def set_budget(self, budget: int) -> None:
        # _budget is consulted under _lock in charge(); this write races.
        self._budget = budget

    def rollback(self) -> None:
        # Same shape: guarded state written with no lock held.
        self._issued -= 1


class Dispatcher:
    """Fans work out to a pool, then scribbles on itself off-thread."""

    def __init__(self) -> None:
        self._last_result: object | None = None

    def run(self, jobs: list[object]) -> None:
        pool = ThreadPoolExecutor(max_workers=2)
        for job in jobs:
            pool.submit(self._work, job)
        pool.shutdown(wait=True)

    def _work(self, job: object) -> None:
        # Runs on a worker thread; nothing synchronises this write.
        self._last_result = job
