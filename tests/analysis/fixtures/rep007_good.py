"""Good: every write to guarded state happens under its lock."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor


class ProbeAccounting:
    """Budgeted probe counter with a declared lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._issued = 0
        self._budget = 100

    def charge(self) -> bool:
        with self._lock:
            if self._issued >= self._budget:
                return False
            self._issued += 1
            return True

    def set_budget(self, budget: int) -> None:
        with self._lock:
            self._budget = budget

    def rollback(self) -> None:
        with self._lock:
            self._issued -= 1


class Dispatcher:
    """Workers return values; only the owner thread mutates state."""

    def __init__(self) -> None:
        self._last_result: object | None = None

    def run(self, jobs: list[object]) -> None:
        pool = ThreadPoolExecutor(max_workers=2)
        futures = [pool.submit(self._work, job) for job in jobs]
        pool.shutdown(wait=True)
        for future in futures:
            self._last_result = future.result()

    def _work(self, job: object) -> object:
        return job
