"""Golden fixture: columnar data-plane access outside repro.db (REP004)."""

from repro.db.columns import ColumnStore
from repro.db.vectorized import compile_query


def scan_for_free(table, query):
    # Evaluating masks straight off the column store answers the query
    # with no facade and no ProbeLog entry.
    store = table._store
    compiled = compile_query(query, store)
    return [i for i in range(len(store)) if compiled.matches_at(i)], ColumnStore


def peek_zone_maps(store):
    # Zone maps reveal per-block statistics the form never exposes.
    return [stats for column in store._zone_maps for stats in column]


def read_raw_columns(store):
    return store._columns


def drain_shards(sharded, query):
    rows = []
    for shard, ids in zip(sharded._shards, sharded._global_ids):
        rows.extend(shard.query(query).rows)
    return rows, ids
