"""Good: every path that needs both locks takes them in one order."""

from __future__ import annotations

import threading

_CACHE_LOCK = threading.Lock()
_STATS_LOCK = threading.Lock()


def refresh_cache(cache: dict, entries: dict, stats: dict) -> None:
    with _CACHE_LOCK:
        cache.update(entries)
        with _STATS_LOCK:
            stats["refreshes"] = stats.get("refreshes", 0) + 1


def publish_stats(cache: dict, stats: dict) -> dict:
    with _CACHE_LOCK:
        size = len(cache)
        with _STATS_LOCK:
            snapshot = dict(stats)
            snapshot["cache_size"] = size
    return snapshot
