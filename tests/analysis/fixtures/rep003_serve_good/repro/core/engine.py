"""Golden fixture: the engine stays below the serving layer."""


def answer(query, k):
    return (query, k)
