"""Golden fixture: serve imports downward into the core, never upward."""

from repro.core.engine import answer


def handle(query, k):
    return answer(query, k)
