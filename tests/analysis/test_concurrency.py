"""Unit tests for the concurrency substrate: call graph, locks, escape."""

from pathlib import Path

from repro.analysis import LintEngine, all_rules, load_project
from repro.analysis.concurrency import ConcurrencyContext

FIXTURES = Path(__file__).parent / "fixtures"
TREE = FIXTURES / "conc_tree"

WEBDB = "repro.db.webdb"
SESSION = "repro.core.plan.session"


def tree_context() -> ConcurrencyContext:
    return ConcurrencyContext.of(load_project([TREE]))


class TestCallGraph:
    def test_indexes_methods_functions_and_nested_defs(self):
        ctx = tree_context()
        keys = set(ctx.graph.functions)
        assert f"{WEBDB}:MiniWebDB.query" in keys
        assert f"{WEBDB}:register_source" in keys
        assert f"{SESSION}:MiniSession.drain_later.drain" in keys

    def test_resolves_self_method_calls(self):
        ctx = tree_context()
        callers = ctx.graph.callers_of[f"{SESSION}:MiniSession._run_one"]
        assert {site.caller for site in callers} == {
            f"{SESSION}:MiniSession._dispatch"
        }

    def test_resolves_cross_module_constructor_imports(self):
        ctx = tree_context()
        callees = {
            site.callee
            for site in ctx.graph.calls_by_caller[f"{SESSION}:build_session"]
        }
        assert f"{WEBDB}:MiniWebDB.__init__" in callees

    def test_unresolved_calls_keep_their_name_chain(self):
        ctx = tree_context()
        sites = ctx.graph.calls_by_caller[f"{SESSION}:MiniSession._run_one"]
        chains = {site.chain for site in sites}
        assert ("self", "webdb", "query") in chains
        assert all(
            site.callee is None
            for site in sites
            if site.chain == ("self", "webdb", "query")
        )

    def test_context_is_memoized_per_project(self):
        project = load_project([TREE])
        assert ConcurrencyContext.of(project) is ConcurrencyContext.of(project)


class TestLockModel:
    def test_declares_instance_and_module_locks(self):
        ctx = tree_context()
        assert f"{WEBDB}:MiniWebDB._lock" in ctx.locks.decls
        assert f"{WEBDB}:_REGISTRY_LOCK" in ctx.locks.decls
        assert ctx.locks.decls[f"{WEBDB}:MiniWebDB._lock"].kind == "RLock"

    def test_locked_helper_inherits_the_guard(self):
        ctx = tree_context()
        entry = ctx.locks.entry_held(f"{WEBDB}:MiniWebDB._query_locked")
        assert entry == {f"{WEBDB}:MiniWebDB._lock"}

    def test_public_entry_points_assume_nothing(self):
        ctx = tree_context()
        assert ctx.locks.entry_held(f"{WEBDB}:MiniWebDB.query") == frozenset()

    def test_mutations_record_their_held_set(self):
        ctx = tree_context()
        writes = [
            access
            for access in ctx.locks.accesses
            if access.attr == "_issued"
            and access.is_write
            and not access.fn.endswith("__init__")
        ]
        assert writes, "expected the _issued increment to be recorded"
        for access in writes:
            held = access.held | ctx.locks.entry_held(access.fn)
            assert f"{WEBDB}:MiniWebDB._lock" in held

    def test_acquisitions_close_over_callees(self):
        ctx = tree_context()
        acquired = ctx.locks.acquires_within[f"{SESSION}:MiniSession._run_one"]
        assert acquired == frozenset()  # webdb.query is unresolved
        assert (
            f"{WEBDB}:MiniWebDB._lock"
            in ctx.locks.acquires_within[f"{WEBDB}:MiniWebDB.query"]
        )

    def test_nested_with_records_held_before(self):
        ctx = ConcurrencyContext.of(
            load_project([FIXTURES / "rep008_bad.py"])
        )
        ordered = {
            (acq.held_before, acq.lock_id) for acq in ctx.locks.acquisitions
        }
        assert (
            ("rep008_bad:_CACHE_LOCK",),
            "rep008_bad:_STATS_LOCK",
        ) in ordered
        assert (
            ("rep008_bad:_STATS_LOCK",),
            "rep008_bad:_CACHE_LOCK",
        ) in ordered


class TestEscapeModel:
    def test_submit_targets_become_roots(self):
        ctx = tree_context()
        assert f"{SESSION}:MiniSession._dispatch" in ctx.escape.roots

    def test_closure_follows_resolved_edges(self):
        ctx = tree_context()
        assert ctx.escape.escapes(f"{SESSION}:MiniSession._run_one")

    def test_nested_worker_defs_escape(self):
        ctx = tree_context()
        assert ctx.escape.escapes(f"{SESSION}:MiniSession.drain_later.drain")

    def test_process_pools_do_not_thread_escape(self):
        ctx = tree_context()
        assert not ctx.escape.escapes(f"{SESSION}:_score")

    def test_boundary_calls_record_the_payload(self):
        ctx = tree_context()
        submits = [b for b in ctx.escape.boundary_calls if b.kind == "submit"]
        assert len(submits) == 2
        prefetch = [
            b
            for b in submits
            if b.fn == f"{SESSION}:MiniSession.prefetch"
        ]
        assert len(prefetch) == 1
        assert len(prefetch[0].payload) == 1


class TestTreeUnderTheRules:
    def test_mini_tree_is_clean_under_the_concurrency_rules(self):
        engine = LintEngine(
            all_rules(["REP007", "REP008", "REP009", "REP010"])
        )
        run = engine.run([TREE])
        assert run.findings == [], [f.render() for f in run.findings]
