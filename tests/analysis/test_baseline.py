"""Baseline round-trip: accepted findings vanish, new ones still fire."""

from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    all_rules,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.finding import fingerprints

FIXTURES = Path(__file__).parent / "fixtures"


def test_baseline_round_trip(tmp_path):
    engine = LintEngine(all_rules(["REP002"]))
    first = engine.run([FIXTURES / "rep002_bad.py"])
    assert first.findings

    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, first.findings)
    assert load_baseline(baseline) == set(fingerprints(first.findings))

    second = engine.run([FIXTURES / "rep002_bad.py"], baseline_path=baseline)
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)
    assert second.stale_fingerprints == set()


def test_baseline_survives_line_drift(tmp_path):
    source = FIXTURES / "rep002_bad.py"
    copy = tmp_path / "rep002_bad.py"
    copy.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")

    engine = LintEngine(all_rules(["REP002"]))
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, engine.run([copy]).findings)

    # Prepend lines: every finding moves, no finding changes content.
    copy.write_text(
        "# a new header comment\n\n" + copy.read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    drifted = engine.run([copy], baseline_path=baseline)
    assert drifted.findings == []
    assert drifted.stale_fingerprints == set()


def test_stale_fingerprints_are_surfaced(tmp_path):
    engine = LintEngine(all_rules(["REP002"]))
    run = engine.run([FIXTURES / "rep002_bad.py"])
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run.findings)

    accepted = load_baseline(baseline) | {"deadbeefdeadbeef-0"}
    fresh, baselined, stale = match_baseline(run.findings, accepted)
    assert fresh == []
    assert len(baselined) == len(run.findings)
    assert stale == {"deadbeefdeadbeef-0"}


def test_duplicate_findings_get_distinct_fingerprints(tmp_path):
    source = tmp_path / "dupes.py"
    source.write_text(
        "def f(a: float, b: float):\n"
        "    x = a == b\n"
        "    x = a == b\n"
        "    return x\n",
        encoding="utf-8",
    )
    engine = LintEngine(all_rules(["REP002"]))
    run = engine.run([source])
    assert len(run.findings) == 2
    prints = fingerprints(run.findings)
    assert len(set(prints)) == 2

    # Baselining only the first occurrence keeps reporting the second.
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run.findings[:1])
    partial = engine.run([source], baseline_path=baseline)
    assert len(partial.findings) == 1
    assert len(partial.baselined) == 1


def test_malformed_baseline_is_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("[]", encoding="utf-8")
    with pytest.raises(ValueError, match="fingerprints"):
        load_baseline(bad)
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_baseline(bad)


def test_committed_repo_baseline_is_empty():
    repo_baseline = Path(__file__).resolve().parents[2] / ".reprolint-baseline.json"
    assert repo_baseline.exists()
    assert load_baseline(repo_baseline) == set()
