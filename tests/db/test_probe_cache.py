"""Unit tests for the opt-in LRU probe cache."""

import pytest

from repro.db.errors import ProbeLimitExceededError
from repro.db.predicates import Between, Eq, IsIn, Lt
from repro.db.probe_cache import ProbeCache, canonical_probe_key
from repro.db.query import SelectionQuery
from repro.db.webdb import AutonomousWebDatabase


class TestCanonicalKey:
    def test_predicate_order_insensitive(self):
        a = SelectionQuery((Eq("Make", "Toyota"), Lt("Price", 10000)))
        b = SelectionQuery((Lt("Price", 10000), Eq("Make", "Toyota")))
        assert canonical_probe_key(a, None, 0) == canonical_probe_key(b, None, 0)

    def test_isin_value_order_insensitive(self):
        a = SelectionQuery((IsIn("Make", ("Toyota", "Honda")),))
        b = SelectionQuery((IsIn("Make", ("Honda", "Toyota")),))
        assert canonical_probe_key(a, None, 0) == canonical_probe_key(b, None, 0)

    def test_different_windows_differ(self):
        q = SelectionQuery((Eq("Make", "Toyota"),))
        assert canonical_probe_key(q, None, 0) != canonical_probe_key(q, 5, 0)
        assert canonical_probe_key(q, None, 0) != canonical_probe_key(q, None, 2)

    def test_different_predicates_differ(self):
        a = SelectionQuery((Eq("Make", "Toyota"),))
        b = SelectionQuery((Eq("Make", "Honda"),))
        c = SelectionQuery((Between("Price", 1, 2),))
        keys = {canonical_probe_key(q, None, 0) for q in (a, b, c)}
        assert len(keys) == 3


class TestProbeCacheLRU:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ProbeCache(0)

    def test_count_and_result_keys_do_not_collide(self, toy_webdb):
        cache = ProbeCache(8)
        query = SelectionQuery((Eq("Make", "Toyota"),))
        result = toy_webdb.query(query)
        cache.put_result(query, None, 0, result)
        assert cache.get_count(query) is None
        cache.put_count(query, 3)
        assert cache.get_count(query) == 3
        assert cache.get_result(query, None, 0) is result

    def test_lru_eviction_order(self):
        cache = ProbeCache(2)
        q = [SelectionQuery((Eq("Make", str(i)),)) for i in range(3)]
        cache.put_count(q[0], 0)
        cache.put_count(q[1], 1)
        # Touch q0 so q1 becomes the least recently used entry.
        assert cache.get_count(q[0]) == 0
        evicted = cache.put_count(q[2], 2)
        assert evicted
        assert cache.evictions == 1
        assert cache.get_count(q[1]) is None
        assert cache.get_count(q[0]) == 0
        assert cache.get_count(q[2]) == 2

    def test_hit_miss_counters(self):
        cache = ProbeCache(4)
        query = SelectionQuery((Eq("Make", "Toyota"),))
        assert cache.get_count(query) is None
        cache.put_count(query, 5)
        assert cache.get_count(query) == 5
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_drops_entries_not_counters(self):
        cache = ProbeCache(4)
        query = SelectionQuery((Eq("Make", "Toyota"),))
        cache.put_count(query, 5)
        cache.get_count(query)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestWebdbIntegration:
    def test_cache_off_by_default(self, toy_webdb):
        assert toy_webdb.probe_cache is None

    def test_hit_serves_identical_payload(self, toy_webdb):
        toy_webdb.enable_probe_cache()
        query = SelectionQuery((Eq("Make", "Toyota"),))
        first = toy_webdb.query(query)
        second = toy_webdb.query(query)
        assert not first.from_cache
        assert second.from_cache
        assert second.rows == first.rows
        assert second.row_ids == first.row_ids
        assert toy_webdb.log.probes_issued == 1
        assert toy_webdb.log.cache_hits == 1

    def test_hit_does_not_charge_budget(self, toy_table):
        webdb = AutonomousWebDatabase(
            toy_table, probe_budget=1, probe_cache_capacity=8
        )
        query = SelectionQuery((Eq("Make", "Toyota"),))
        webdb.query(query)
        # The budget is exhausted, but the repeat is served by the cache.
        assert webdb.query(query).from_cache
        with pytest.raises(ProbeLimitExceededError):
            webdb.query(SelectionQuery((Eq("Make", "Honda"),)))

    def test_count_probes_cached(self, toy_webdb):
        toy_webdb.enable_probe_cache()
        query = SelectionQuery((Eq("Make", "Honda"),))
        assert toy_webdb.count(query) == toy_webdb.count(query)
        assert toy_webdb.log.probes_issued == 1
        assert toy_webdb.log.cache_hits == 1

    def test_limit_folds_result_cap_into_key(self, toy_table):
        webdb = AutonomousWebDatabase(toy_table, result_cap=2)
        webdb.enable_probe_cache()
        query = SelectionQuery((Eq("Make", "Toyota"),))
        # limit=5 and limit=None share an effective limit of 2.
        first = webdb.query(query, limit=5)
        second = webdb.query(query)
        assert second.from_cache
        assert second.rows == first.rows

    def test_disable_drops_cache(self, toy_webdb):
        toy_webdb.enable_probe_cache()
        query = SelectionQuery((Eq("Make", "Toyota"),))
        toy_webdb.query(query)
        toy_webdb.disable_probe_cache()
        assert toy_webdb.probe_cache is None
        assert not toy_webdb.query(query).from_cache

    def test_accounting_window_sees_cache_hits(self, toy_webdb):
        toy_webdb.enable_probe_cache()
        query = SelectionQuery((Eq("Make", "Toyota"),))
        toy_webdb.query(query)
        with toy_webdb.accounting_scope() as window:
            toy_webdb.query(query)
        assert window.probes_issued == 0
        assert window.cache_hits == 1
