"""Unit tests for the autonomous Web database facade."""

import pytest

from repro.db.errors import ProbeLimitExceededError
from repro.db.predicates import Eq
from repro.db.query import SelectionQuery
from repro.db.webdb import AutonomousWebDatabase


class TestMetadata:
    def test_schema_and_name(self, toy_webdb):
        assert toy_webdb.name == "Cars"
        assert "Make" in toy_webdb.schema

    def test_form_options_categorical(self, toy_webdb):
        assert toy_webdb.form_options("Make") == ["Ford", "Honda", "Toyota"]

    def test_form_options_numeric_refused(self, toy_webdb):
        with pytest.raises(ValueError):
            toy_webdb.form_options("Price")

    def test_cardinality_hint(self, toy_webdb, toy_table):
        assert toy_webdb.cardinality_hint() == len(toy_table)


class TestQuerying:
    def test_query_and_log(self, toy_webdb):
        result = toy_webdb.query(SelectionQuery((Eq("Make", "Toyota"),)))
        assert len(result) == 3
        assert toy_webdb.log.probes_issued == 1
        assert toy_webdb.log.tuples_returned == 3

    def test_empty_results_counted(self, toy_webdb):
        toy_webdb.query(SelectionQuery((Eq("Make", "BMW"),)))
        assert toy_webdb.log.empty_results == 1

    def test_count(self, toy_webdb):
        assert toy_webdb.count(SelectionQuery((Eq("Make", "Honda"),))) == 3

    def test_reset_accounting(self, toy_webdb):
        toy_webdb.query(SelectionQuery.match_all())
        toy_webdb.reset_accounting()
        assert toy_webdb.log.probes_issued == 0
        assert toy_webdb.execution_stats.queries_executed == 0


class TestResultCap:
    def test_cap_applies(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        result = capped.query(SelectionQuery((Eq("Make", "Toyota"),)))
        assert len(result) == 2 and result.truncated

    def test_caller_limit_cannot_exceed_cap(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        result = capped.query(SelectionQuery.match_all(), limit=5)
        assert len(result) == 2

    def test_caller_limit_below_cap(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=5)
        result = capped.query(SelectionQuery.match_all(), limit=1)
        assert len(result) == 1

    def test_offset_pages(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=3)
        first = capped.query(SelectionQuery.match_all())
        second = capped.query(SelectionQuery.match_all(), offset=3)
        third = capped.query(SelectionQuery.match_all(), offset=6)
        assert len(first) == 3 and first.truncated
        assert len(second) == 3 and second.truncated
        assert len(third) == len(toy_table) - 6 and not third.truncated
        seen = set(first.row_ids) | set(second.row_ids) | set(third.row_ids)
        assert seen == set(range(len(toy_table)))


class TestProbeBudget:
    def test_budget_enforced(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=2)
        limited.query(SelectionQuery.match_all())
        limited.query(SelectionQuery.match_all())
        with pytest.raises(ProbeLimitExceededError):
            limited.query(SelectionQuery.match_all())

    def test_error_carries_limit(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=0)
        with pytest.raises(ProbeLimitExceededError) as excinfo:
            limited.query(SelectionQuery.match_all())
        assert excinfo.value.limit == 0


class TestCountProbes:
    """Count probes are real probes but must not inflate row accounting."""

    def test_count_logged_distinctly(self, toy_webdb):
        toy_webdb.count(SelectionQuery((Eq("Make", "Honda"),)))
        assert toy_webdb.log.probes_issued == 1
        assert toy_webdb.log.count_probes == 1
        assert toy_webdb.log.tuples_returned == 0

    def test_empty_count_recorded(self, toy_webdb):
        assert toy_webdb.count(SelectionQuery((Eq("Make", "BMW"),))) == 0
        assert toy_webdb.log.empty_results == 1

    def test_count_does_not_materialise_rows(self, toy_webdb):
        toy_webdb.count(SelectionQuery.match_all())
        assert toy_webdb.execution_stats.rows_returned == 0
        assert toy_webdb.execution_stats.rows_examined > 0

    def test_count_spends_probe_budget(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=1)
        limited.count(SelectionQuery.match_all())
        with pytest.raises(ProbeLimitExceededError):
            limited.count(SelectionQuery.match_all())

    def test_count_ignores_result_cap(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        assert capped.count(SelectionQuery.match_all()) == len(toy_table)


class TestAccountingScope:
    def test_window_sees_only_scoped_traffic(self, toy_webdb):
        toy_webdb.query(SelectionQuery((Eq("Make", "Toyota"),)))
        with toy_webdb.accounting_scope() as window:
            toy_webdb.query(SelectionQuery((Eq("Make", "Honda"),)))
        assert window.probes_issued == 1
        assert window.tuples_returned == 3
        # The global log keeps accumulating untouched.
        assert toy_webdb.log.probes_issued == 2
        assert toy_webdb.log.tuples_returned == 6

    def test_window_freezes_at_exit(self, toy_webdb):
        with toy_webdb.accounting_scope() as window:
            toy_webdb.query(SelectionQuery((Eq("Make", "Ford"),)))
        toy_webdb.query(SelectionQuery.match_all())
        assert window.probes_issued == 1
        assert window.tuples_returned == 2

    def test_scopes_nest(self, toy_webdb):
        with toy_webdb.accounting_scope() as outer:
            toy_webdb.query(SelectionQuery((Eq("Make", "Toyota"),)))
            with toy_webdb.accounting_scope() as inner:
                toy_webdb.query(SelectionQuery((Eq("Make", "Honda"),)))
            assert inner.probes_issued == 1
            assert inner.tuples_returned == 3
        assert outer.probes_issued == 2
        assert outer.tuples_returned == 6

    def test_window_separates_count_probes(self, toy_webdb):
        with toy_webdb.accounting_scope() as window:
            toy_webdb.query(SelectionQuery((Eq("Make", "Honda"),)))
            toy_webdb.count(SelectionQuery((Eq("Make", "Toyota"),)))
        assert window.probes_issued == 2
        assert window.count_probes == 1
        assert window.tuples_returned == 3

    def test_window_tracks_execution_stats(self, toy_webdb):
        toy_webdb.query(SelectionQuery.match_all())
        with toy_webdb.accounting_scope() as window:
            toy_webdb.query(SelectionQuery.match_all())
        assert window.execution_stats.queries_executed == 1

    def test_window_survives_budget_trip(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=1)
        with pytest.raises(ProbeLimitExceededError):
            with limited.accounting_scope() as window:
                limited.query(SelectionQuery.match_all())
                limited.query(SelectionQuery.match_all())
        assert window.probes_issued == 1
        assert limited.log.probes_issued == 1


class TestProbeLogDelta:
    def test_snapshot_and_delta(self, toy_webdb):
        toy_webdb.query(SelectionQuery((Eq("Make", "Toyota"),)))
        before = toy_webdb.log.snapshot()
        toy_webdb.query(SelectionQuery((Eq("Make", "Honda"),)))
        toy_webdb.count(SelectionQuery((Eq("Make", "BMW"),)))
        delta = toy_webdb.log.delta(before)
        assert delta.probes_issued == 2
        assert delta.tuples_returned == 3
        assert delta.count_probes == 1
        assert delta.empty_results == 1

    def test_snapshot_is_detached(self, toy_webdb):
        before = toy_webdb.log.snapshot()
        toy_webdb.query(SelectionQuery.match_all())
        assert before.probes_issued == 0
