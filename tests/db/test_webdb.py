"""Unit tests for the autonomous Web database facade."""

import pytest

from repro.db.errors import ProbeLimitExceededError
from repro.db.predicates import Eq
from repro.db.query import SelectionQuery
from repro.db.webdb import AutonomousWebDatabase


class TestMetadata:
    def test_schema_and_name(self, toy_webdb):
        assert toy_webdb.name == "Cars"
        assert "Make" in toy_webdb.schema

    def test_form_options_categorical(self, toy_webdb):
        assert toy_webdb.form_options("Make") == ["Ford", "Honda", "Toyota"]

    def test_form_options_numeric_refused(self, toy_webdb):
        with pytest.raises(ValueError):
            toy_webdb.form_options("Price")

    def test_cardinality_hint(self, toy_webdb, toy_table):
        assert toy_webdb.cardinality_hint() == len(toy_table)


class TestQuerying:
    def test_query_and_log(self, toy_webdb):
        result = toy_webdb.query(SelectionQuery((Eq("Make", "Toyota"),)))
        assert len(result) == 3
        assert toy_webdb.log.probes_issued == 1
        assert toy_webdb.log.tuples_returned == 3

    def test_empty_results_counted(self, toy_webdb):
        toy_webdb.query(SelectionQuery((Eq("Make", "BMW"),)))
        assert toy_webdb.log.empty_results == 1

    def test_count(self, toy_webdb):
        assert toy_webdb.count(SelectionQuery((Eq("Make", "Honda"),))) == 3

    def test_reset_accounting(self, toy_webdb):
        toy_webdb.query(SelectionQuery.match_all())
        toy_webdb.reset_accounting()
        assert toy_webdb.log.probes_issued == 0
        assert toy_webdb.execution_stats.queries_executed == 0


class TestResultCap:
    def test_cap_applies(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        result = capped.query(SelectionQuery((Eq("Make", "Toyota"),)))
        assert len(result) == 2 and result.truncated

    def test_caller_limit_cannot_exceed_cap(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=2)
        result = capped.query(SelectionQuery.match_all(), limit=5)
        assert len(result) == 2

    def test_caller_limit_below_cap(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=5)
        result = capped.query(SelectionQuery.match_all(), limit=1)
        assert len(result) == 1

    def test_offset_pages(self, toy_table):
        capped = AutonomousWebDatabase(toy_table, result_cap=3)
        first = capped.query(SelectionQuery.match_all())
        second = capped.query(SelectionQuery.match_all(), offset=3)
        third = capped.query(SelectionQuery.match_all(), offset=6)
        assert len(first) == 3 and first.truncated
        assert len(second) == 3 and second.truncated
        assert len(third) == len(toy_table) - 6 and not third.truncated
        seen = set(first.row_ids) | set(second.row_ids) | set(third.row_ids)
        assert seen == set(range(len(toy_table)))


class TestProbeBudget:
    def test_budget_enforced(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=2)
        limited.query(SelectionQuery.match_all())
        limited.query(SelectionQuery.match_all())
        with pytest.raises(ProbeLimitExceededError):
            limited.query(SelectionQuery.match_all())

    def test_error_carries_limit(self, toy_table):
        limited = AutonomousWebDatabase(toy_table, probe_budget=0)
        with pytest.raises(ProbeLimitExceededError) as excinfo:
            limited.query(SelectionQuery.match_all())
        assert excinfo.value.limit == 0
