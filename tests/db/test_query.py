"""Unit tests for conjunctive selection queries."""

import pytest

from repro.db.errors import QueryError, UnknownAttributeError
from repro.db.predicates import Eq, Gt, Lt
from repro.db.query import SelectionQuery


def camry_query() -> SelectionQuery:
    return SelectionQuery((Eq("Model", "Camry"), Lt("Price", 10000)))


class TestConstruction:
    def test_from_pairs(self):
        q = SelectionQuery.from_pairs(
            [("Model", "=", "Camry"), ("Price", "<", 10000)]
        )
        assert q == camry_query()

    def test_equalities(self):
        q = SelectionQuery.equalities({"Make": "Ford", "Model": "Focus"})
        assert q.bound_attributes == ("Make", "Model")
        assert all(isinstance(p, Eq) for p in q)

    def test_match_all(self):
        q = SelectionQuery.match_all()
        assert len(q) == 0
        assert q.describe() == "<match-all>"


class TestInspection:
    def test_bound_attributes_order_and_dedup(self):
        q = SelectionQuery((Gt("Price", 1), Eq("Model", "Camry"), Lt("Price", 9)))
        assert q.bound_attributes == ("Price", "Model")

    def test_predicates_on(self):
        q = camry_query()
        assert len(q.predicates_on("Price")) == 1
        assert q.predicates_on("Nope") == ()

    def test_equality_binding(self):
        q = camry_query()
        assert q.equality_binding("Model") == "Camry"
        assert q.equality_binding("Price") is None

    def test_validate_against(self, toy_schema):
        camry_query().validate_against(toy_schema)
        bad = SelectionQuery((Eq("Nope", 1),))
        with pytest.raises(UnknownAttributeError):
            bad.validate_against(toy_schema)


class TestEvaluation:
    def test_matches_full_conjunction(self, toy_schema):
        q = camry_query()
        row = ("Toyota", "Camry", 9000, 2000)
        assert q.matches(row, toy_schema)

    def test_one_failed_conjunct_fails(self, toy_schema):
        q = camry_query()
        assert not q.matches(("Toyota", "Camry", 12000, 2000), toy_schema)
        assert not q.matches(("Toyota", "Corolla", 9000, 2000), toy_schema)

    def test_match_all_matches_everything(self, toy_schema):
        assert SelectionQuery.match_all().matches(
            ("Toyota", "Camry", 1, 1), toy_schema
        )


class TestRewriting:
    def test_without_attributes(self):
        q = camry_query()
        relaxed = q.without_attributes(["Price"])
        assert relaxed.bound_attributes == ("Model",)
        # original untouched
        assert q.bound_attributes == ("Model", "Price")

    def test_without_all(self):
        assert len(camry_query().without_attributes(["Model", "Price"])) == 0

    def test_replacing(self):
        q = camry_query()
        replaced = q.replacing("Price", [Eq("Price", 5000)])
        assert replaced.equality_binding("Price") == 5000
        assert replaced.equality_binding("Model") == "Camry"

    def test_replacing_wrong_attribute_raises(self):
        with pytest.raises(QueryError):
            camry_query().replacing("Price", [Eq("Model", "Civic")])

    def test_and_also(self):
        q = camry_query().and_also(Eq("Make", "Toyota"))
        assert q.bound_attributes == ("Model", "Price", "Make")


class TestRendering:
    def test_describe_joins_with_and(self):
        assert " AND " in camry_query().describe()

    def test_str_delegates(self):
        q = camry_query()
        assert str(q) == q.describe()
