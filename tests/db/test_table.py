"""Unit tests for the in-memory table."""

import pytest

from repro.db.errors import TypeMismatchError, UnknownAttributeError
from repro.db.table import Table


class TestInsertAndRead:
    def test_insert_returns_sequential_ids(self, toy_schema):
        table = Table(toy_schema)
        assert table.insert(("Ford", "Focus", 7000, 2001)) == 0
        assert table.insert(("Honda", "Civic", 7500, 1999)) == 1
        assert len(table) == 2

    def test_insert_validates(self, toy_schema):
        table = Table(toy_schema)
        with pytest.raises(TypeMismatchError):
            table.insert(("Ford", "Focus", "expensive", 2001))

    def test_insert_mapping(self, toy_schema):
        table = Table(toy_schema)
        table.insert_mapping({"Make": "Ford", "Model": "Focus", "Price": 1, "Year": 2})
        assert table.row(0) == ("Ford", "Focus", 1, 2)

    def test_extend_counts(self, toy_schema):
        table = Table(toy_schema)
        n = table.extend([("Ford", "Focus", 1, 2), ("Honda", "Civic", 3, 4)])
        assert n == 2 and len(table) == 2

    def test_rows_selection(self, toy_table):
        rows = toy_table.rows([0, 2])
        assert rows[0][1] == "Camry" and rows[1][1] == "Corolla"

    def test_iteration(self, toy_table):
        assert len(list(toy_table)) == len(toy_table)


class TestColumns:
    def test_column(self, toy_table):
        makes = toy_table.column("Make")
        assert makes[0] == "Toyota" and len(makes) == len(toy_table)

    def test_columns(self, toy_table):
        pairs = toy_table.columns(("Make", "Model"))
        assert pairs[0] == ("Toyota", "Camry")

    def test_distinct_values(self, toy_table):
        assert set(toy_table.distinct_values("Make")) == {"Toyota", "Honda", "Ford"}

    def test_value_counts(self, toy_table):
        counts = toy_table.value_counts("Make")
        assert counts["Toyota"] == 3 and counts["Honda"] == 3 and counts["Ford"] == 2

    def test_value_counts_without_index(self, toy_schema):
        table = Table(toy_schema, auto_index=False)
        table.insert(("Ford", "Focus", 1, 2))
        table.insert(("Ford", None, 1, 2))
        assert table.value_counts("Make") == {"Ford": 2}
        assert table.distinct_values("Model") == ["Focus"]

    def test_numeric_extent(self, toy_table):
        assert toy_table.numeric_extent("Price") == (7000, 17000)

    def test_numeric_extent_empty(self, toy_schema):
        assert Table(toy_schema).numeric_extent("Price") is None

    def test_numeric_extent_categorical_raises(self, toy_table):
        with pytest.raises(UnknownAttributeError):
            toy_table.numeric_extent("Make")


class TestIndexMaintenance:
    def test_auto_indexes_exist(self, toy_table):
        assert toy_table.hash_index("Make") is not None
        assert toy_table.sorted_index("Price") is not None
        assert toy_table.hash_index("Price") is None

    def test_indexes_updated_on_insert(self, toy_schema):
        table = Table(toy_schema)
        table.insert(("Ford", "Focus", 7000, 2001))
        assert table.hash_index("Make").lookup("Ford") == [0]
        assert list(table.sorted_index("Price").range(6000, 8000)) == [0]

    def test_late_index_backfills(self, toy_table):
        index = toy_table.create_hash_index("Year")
        # Year is numeric so no auto hash index existed; counts must match.
        assert sum(index.value_counts().values()) == len(toy_table)

    def test_create_twice_returns_same(self, toy_table):
        first = toy_table.create_hash_index("Make")
        assert toy_table.create_hash_index("Make") is first


class TestDerivation:
    def test_sample(self, toy_table):
        derived = toy_table.sample([1, 3])
        assert len(derived) == 2
        assert derived.row(0) == toy_table.row(1)

    def test_filter(self, toy_table):
        toyotas = toy_table.filter(lambda row: row[0] == "Toyota")
        assert len(toyotas) == 3
        assert all(row[0] == "Toyota" for row in toyotas)

    def test_to_mappings(self, toy_table):
        mappings = toy_table.to_mappings()
        assert mappings[0]["Model"] == "Camry"
        assert len(mappings) == len(toy_table)
