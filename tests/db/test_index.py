"""Unit tests for hash and sorted indexes."""

import pytest

from repro.db.index import HashIndex, SortedIndex
from repro.db.predicates import Between, Eq, Ge, Gt, IsIn, Le, Lt


class TestHashIndex:
    def make(self) -> HashIndex:
        index = HashIndex("Make")
        for row_id, value in enumerate(["Ford", "Toyota", "Ford", "Honda"]):
            index.add(value, row_id)
        return index

    def test_lookup(self):
        index = self.make()
        assert index.lookup("Ford") == [0, 2]
        assert index.lookup("BMW") == []

    def test_nulls_not_indexed(self):
        index = HashIndex("A")
        index.add(None, 0)
        assert len(index) == 0

    def test_lookup_many_sorted_dedup(self):
        index = self.make()
        assert index.lookup_many(["Toyota", "Ford", "Ford"]) == [0, 1, 2]

    def test_distinct_values_and_counts(self):
        index = self.make()
        assert set(index.distinct_values()) == {"Ford", "Toyota", "Honda"}
        assert index.value_counts() == {"Ford": 2, "Toyota": 1, "Honda": 1}

    def test_serves(self):
        index = self.make()
        assert index.serves(Eq("Make", "Ford"))
        assert index.serves(IsIn("Make", ["Ford"]))
        assert not index.serves(Eq("Model", "x"))
        assert not index.serves(Lt("Make", "M"))

    def test_candidates(self):
        index = self.make()
        assert index.candidates(Eq("Make", "Ford")) == [0, 2]
        assert index.candidates(IsIn("Make", ["Honda", "Toyota"])) == [1, 3]

    def test_candidates_wrong_predicate_type(self):
        with pytest.raises(TypeError):
            self.make().candidates(Lt("Make", "M"))


class TestSortedIndex:
    def make(self) -> SortedIndex:
        index = SortedIndex("Price")
        for row_id, value in enumerate([50, 10, 30, 20, 40]):
            index.add(value, row_id)
        return index

    def test_len(self):
        assert len(self.make()) == 5

    def test_nulls_not_indexed(self):
        index = SortedIndex("P")
        index.add(None, 0)
        assert len(index) == 0

    def test_range_inclusive(self):
        index = self.make()
        assert sorted(index.range(20, 40)) == [2, 3, 4]

    def test_range_exclusive(self):
        index = self.make()
        assert sorted(index.range(20, 40, False, False)) == [2]

    def test_open_ended(self):
        index = self.make()
        assert sorted(index.range(low=30)) == [0, 2, 4]
        assert sorted(index.range(high=20)) == [1, 3]

    def test_min_max(self):
        index = self.make()
        assert index.min_value() == 10
        assert index.max_value() == 50
        empty = SortedIndex("P")
        assert empty.min_value() is None

    def test_incremental_adds_resort(self):
        index = self.make()
        assert len(index) == 5  # force build
        index.add(25, 9)
        assert sorted(index.range(20, 30)) == [2, 3, 9]

    @pytest.mark.parametrize(
        "predicate,expected",
        [
            (Eq("Price", 30), [2]),
            (Lt("Price", 30), [1, 3]),
            (Le("Price", 30), [1, 2, 3]),
            (Gt("Price", 30), [0, 4]),
            (Ge("Price", 30), [0, 2, 4]),
            (Between("Price", 15, 35), [2, 3]),
        ],
    )
    def test_candidates(self, predicate, expected):
        assert sorted(self.make().candidates(predicate)) == expected

    def test_serves(self):
        index = self.make()
        assert index.serves(Between("Price", 1, 2))
        assert not index.serves(Between("Other", 1, 2))
        assert not index.serves(IsIn("Price", [1]))

    def test_candidates_wrong_predicate_type(self):
        with pytest.raises(TypeError):
            self.make().candidates(IsIn("Price", [1]))
