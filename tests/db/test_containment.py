"""Containment and residual-evaluation properties (hypothesis).

The semantic planner's soundness rests on one algebraic fact: when
``Q1.subsumes(Q2)`` (Q1's canonical conjuncts are a subset of Q2's),
filtering Q1's answer set by Q2's residual predicates yields exactly
Q2's answer set, in the same canonical row order.  These properties
drive that fact across *every* operator the facade supports
(``=, !=, <, <=, >, >=, between, in``) on randomly generated tables
and conjunctions, end to end through the executor and the store's
derivation path.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import SemanticProbeStore
from repro.db.predicates import Between, Eq, Ge, Gt, IsIn, Le, Lt, Ne, Predicate
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase

_SCHEMA = RelationSchema.build(
    "prop",
    categorical=("C0", "C1"),
    numeric=("N0", "N1"),
    order=("C0", "C1", "N0", "N1"),
)
_CATEGORIES = ["x", "y", "z", "w"]


def _build_webdb(rows: list[tuple[str, str, int, int]]) -> AutonomousWebDatabase:
    table = Table(_SCHEMA)
    for row in rows:
        table.insert(row)
    return AutonomousWebDatabase(table)


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_CATEGORIES),
        st.sampled_from(_CATEGORIES),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=40,
)


@st.composite
def predicate_strategy(draw) -> Predicate:
    kind = draw(
        st.sampled_from(("eq", "ne", "lt", "le", "gt", "ge", "between", "in"))
    )
    if kind in ("eq", "ne", "in"):
        attribute = draw(st.sampled_from(("C0", "C1")))
        if kind == "eq":
            return Eq(attribute, draw(st.sampled_from(_CATEGORIES)))
        if kind == "ne":
            return Ne(attribute, draw(st.sampled_from(_CATEGORIES)))
        values = draw(
            st.lists(
                st.sampled_from(_CATEGORIES), min_size=1, max_size=3, unique=True
            )
        )
        return IsIn(attribute, values)
    attribute = draw(st.sampled_from(("N0", "N1")))
    bound = draw(st.integers(min_value=0, max_value=9))
    if kind == "lt":
        return Lt(attribute, bound)
    if kind == "le":
        return Le(attribute, bound)
    if kind == "gt":
        return Gt(attribute, bound)
    if kind == "ge":
        return Ge(attribute, bound)
    high = draw(st.integers(min_value=bound, max_value=12))
    return Between(attribute, bound, high)


conjunction_strategy = st.lists(predicate_strategy(), min_size=1, max_size=4)


@st.composite
def containment_case(draw):
    """A demand Q2 plus a container Q1 built from a conjunct subset."""
    predicates = draw(conjunction_strategy)
    keep = draw(
        st.lists(
            st.booleans(), min_size=len(predicates), max_size=len(predicates)
        )
    )
    container = tuple(p for p, keep_it in zip(predicates, keep) if keep_it)
    return tuple(predicates), container


@given(rows=rows_strategy, case=containment_case())
@settings(max_examples=200, deadline=None)
def test_residual_filter_of_container_rows_equals_direct_answer(rows, case):
    demand_predicates, container_predicates = case
    demand = SelectionQuery(demand_predicates)
    container = SelectionQuery(container_predicates)
    assert container.subsumes(demand)
    webdb = _build_webdb(rows)
    direct = webdb.query(demand)
    container_result = webdb.query(container)
    residual = SelectionQuery(demand.residual_against(container))
    derived_ids = [
        row_id
        for row_id, row in zip(container_result.row_ids, container_result.rows)
        if residual.matches(row, _SCHEMA)
    ]
    assert derived_ids == list(direct.row_ids)


@given(rows=rows_strategy, case=containment_case())
@settings(max_examples=200, deadline=None)
def test_store_derivation_is_bit_identical_to_probing(rows, case):
    demand_predicates, container_predicates = case
    demand = SelectionQuery(demand_predicates)
    container = SelectionQuery(container_predicates)
    webdb = _build_webdb(rows)
    store = SemanticProbeStore()
    entry = store.put_result(container, webdb.query(container), prefetched=False)
    derived = store.derive(demand, entry, _SCHEMA, webdb.result_cap)
    direct = webdb.query(demand)
    assert derived.row_ids == direct.row_ids
    assert derived.rows == direct.rows
    assert derived.truncated == direct.truncated


@given(rows=rows_strategy, case=containment_case())
@settings(max_examples=100, deadline=None)
def test_subsumption_is_syntactic_subset_both_ways(rows, case):
    demand_predicates, container_predicates = case
    demand = SelectionQuery(demand_predicates)
    container = SelectionQuery(container_predicates)
    # Subset of canonical forms <=> subsumes, by definition; and the
    # row sets honour it on every generated table.
    assert container.subsumes(demand)
    if not demand.subsumes(container):
        webdb = _build_webdb(rows)
        demand_ids = set(webdb.query(demand).row_ids)
        container_ids = set(webdb.query(container).row_ids)
        assert demand_ids <= container_ids


@given(rows=rows_strategy)
@settings(max_examples=50, deadline=None)
def test_executor_returns_canonical_ascending_row_id_order(rows):
    webdb = _build_webdb(rows)
    rng = random.Random(13)
    for _ in range(5):
        query = SelectionQuery(
            (
                Eq("C0", rng.choice(_CATEGORIES)),
                Ge("N0", rng.randrange(10)),
            )
        )
        result = webdb.query(query)
        assert list(result.row_ids) == sorted(result.row_ids)
