"""Row-dict vs columnar engine equivalence properties (hypothesis).

The columnar data plane (typed columns, vectorized masks, zone-map
pruning, sharded scatter-gather) is an *optimisation*: its contract is
bit-identity with the row-dict engine — same rows, same canonical
ascending-row-id order, same truncation flags, same ProbeLog numbers.
These properties drive that contract across every operator the facade
supports (``=, !=, <, <=, >, >=, between, in``), nulls included, on
randomly generated tables, paging windows and shard counts.  Tiny
blocks (``block_rows=8``) force multi-block scans so zone maps and the
block merge paths are genuinely exercised.

Roll-up caveat (docs/PERFORMANCE.md §8): the sharded facade's
``ProbeLog`` is bit-identical to the unsharded one, but its
``execution_stats`` sum *physical* per-shard work — a healthy scatter
runs one engine query per shard — so these tests deliberately never
assert ``queries_executed`` equality across sharding.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.predicates import Between, Eq, Ge, Gt, IsIn, Le, Lt, Ne, Predicate
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.sharded import ShardedWebDatabase, ShardFailure, shard_of
from repro.db.table import ColumnarTable, Table
from repro.db.webdb import AutonomousWebDatabase

BLOCK_ROWS = 8

_SCHEMA = RelationSchema.build(
    "prop",
    categorical=("C0", "C1"),
    numeric=("N0", "N1"),
    order=("C0", "C1", "N0", "N1"),
)
_CATEGORIES = ["x", "y", "z", "w"]
# 2**53 + 1 is not float64-representable: any row containing it makes
# that numeric column inexact, forcing the whole-query row-path
# fallback — the property then checks the fallback, not the masks.
_HUGE = 2**53 + 1
_NUMERIC_CELLS = [0, 1, 2, 3, 4, 5, 2.5, 0.5, _HUGE, None]
_NUMERIC_BOUNDS = [0, 1, 2, 3, 4, 5, 2.5, 3.0, _HUGE]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_CATEGORIES + [None]),
        st.sampled_from(_CATEGORIES + [None]),
        st.sampled_from(_NUMERIC_CELLS),
        st.sampled_from(_NUMERIC_CELLS),
    ),
    min_size=1,
    max_size=48,
)


@st.composite
def predicate_strategy(draw) -> Predicate:
    kind = draw(
        st.sampled_from(("eq", "ne", "lt", "le", "gt", "ge", "between", "in"))
    )
    categorical = draw(st.booleans())
    if categorical:
        attribute = draw(st.sampled_from(("C0", "C1")))
        if kind == "eq":
            return Eq(attribute, draw(st.sampled_from(_CATEGORIES + [None])))
        if kind == "ne":
            return Ne(attribute, draw(st.sampled_from(_CATEGORIES + [None])))
        if kind == "in":
            values = draw(
                st.lists(
                    st.sampled_from(_CATEGORIES + [None]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            return IsIn(attribute, values)
        bound = draw(st.sampled_from(_CATEGORIES))
        if kind == "lt":
            return Lt(attribute, bound)
        if kind == "le":
            return Le(attribute, bound)
        if kind == "gt":
            return Gt(attribute, bound)
        if kind == "ge":
            return Ge(attribute, bound)
        high = draw(st.sampled_from([c for c in _CATEGORIES if c >= bound]))
        return Between(attribute, bound, high)
    attribute = draw(st.sampled_from(("N0", "N1")))
    if kind == "eq":
        return Eq(attribute, draw(st.sampled_from(_NUMERIC_BOUNDS + [None])))
    if kind == "ne":
        return Ne(attribute, draw(st.sampled_from(_NUMERIC_BOUNDS + [None])))
    if kind == "in":
        values = draw(
            st.lists(
                st.sampled_from(_NUMERIC_BOUNDS + [None]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        return IsIn(attribute, values)
    bound = draw(st.sampled_from(_NUMERIC_BOUNDS))
    if kind == "lt":
        return Lt(attribute, bound)
    if kind == "le":
        return Le(attribute, bound)
    if kind == "gt":
        return Gt(attribute, bound)
    if kind == "ge":
        return Ge(attribute, bound)
    high = draw(st.sampled_from([b for b in _NUMERIC_BOUNDS if b >= bound]))
    return Between(attribute, bound, high)


query_strategy = st.builds(
    SelectionQuery,
    st.lists(predicate_strategy(), min_size=0, max_size=3).map(tuple),
)
window_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    st.integers(min_value=0, max_value=3),
)


def _row_table(rows, auto_index: bool) -> Table:
    table = Table(_SCHEMA, auto_index=auto_index)
    for row in rows:
        table.insert(row)
    return table


def _columnar_table(rows, auto_index: bool) -> ColumnarTable:
    table = ColumnarTable(_SCHEMA, auto_index=auto_index, block_rows=BLOCK_ROWS)
    for row in rows:
        table.insert(row)
    return table


def _engines(rows) -> list[AutonomousWebDatabase]:
    return [
        AutonomousWebDatabase(_row_table(rows, auto_index=False)),
        AutonomousWebDatabase(_row_table(rows, auto_index=True)),
        AutonomousWebDatabase(_columnar_table(rows, auto_index=False)),
        AutonomousWebDatabase(_columnar_table(rows, auto_index=True)),
    ]


@given(rows=rows_strategy, query=query_strategy, window=window_strategy)
@settings(max_examples=150, deadline=None)
def test_every_engine_returns_identical_pages_and_counts(rows, query, window):
    limit, offset = window
    baseline, *others = _engines(rows)
    expected = baseline.query(query, limit=limit, offset=offset)
    expected_count = baseline.count(query)
    for engine in others:
        result = engine.query(query, limit=limit, offset=offset)
        assert result.row_ids == expected.row_ids
        assert result.rows == expected.rows
        assert result.truncated == expected.truncated
        assert engine.count(query) == expected_count
    assert list(expected.row_ids) == sorted(expected.row_ids)


@given(rows=rows_strategy, query=query_strategy)
@settings(max_examples=100, deadline=None)
def test_unindexed_scan_stats_honour_block_accounting(rows, query):
    row_engine = AutonomousWebDatabase(_row_table(rows, auto_index=False))
    col_engine = AutonomousWebDatabase(_columnar_table(rows, auto_index=False))
    row_engine.query(query)
    col_engine.query(query)
    row_stats = row_engine.execution_stats
    col_stats = col_engine.execution_stats
    total = len(rows)
    n_blocks = -(-total // BLOCK_ROWS)
    assert col_stats.queries_executed == row_stats.queries_executed == 1
    assert col_stats.rows_returned == row_stats.rows_returned
    assert col_stats.full_scans == row_stats.full_scans == 1
    # The row engine looks at every row; the columnar engine may skip
    # whole blocks via zone maps, and a pruned block's rows must never
    # count as examined.
    assert row_stats.rows_examined == total
    if col_stats.blocks_scanned + col_stats.blocks_pruned == 0:
        # The query did not vectorize (e.g. a conjunct touched a column
        # holding an int beyond 2**53): the engine fell back to the
        # row path, which examines every row and counts no blocks.
        assert col_stats.rows_examined == total
    else:
        assert col_stats.blocks_scanned + col_stats.blocks_pruned == n_blocks
        assert col_stats.rows_examined <= total
        assert (
            col_stats.rows_examined
            >= total - col_stats.blocks_pruned * BLOCK_ROWS
        )
        if col_stats.blocks_pruned == 0:
            assert col_stats.rows_examined == total
    assert row_stats.blocks_pruned == row_stats.blocks_scanned == 0


@given(
    rows=rows_strategy,
    query=query_strategy,
    window=window_strategy,
    n_shards=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_sharded_facade_is_bit_identical_to_unsharded(
    rows, query, window, n_shards
):
    limit, offset = window
    table = _row_table(rows, auto_index=True)
    unsharded = AutonomousWebDatabase(_row_table(rows, auto_index=True))
    sharded = ShardedWebDatabase.partition(
        table, n_shards, columnar=True, block_rows=BLOCK_ROWS
    )
    expected = unsharded.query(query, limit=limit, offset=offset)
    gathered = sharded.query(query, limit=limit, offset=offset)
    assert gathered.row_ids == expected.row_ids
    assert gathered.rows == expected.rows
    assert gathered.truncated == expected.truncated
    assert sharded.count(query) == unsharded.count(query)
    # One logical probe per call, bit-identical accounting — even though
    # execution_stats roll up n_shards times the physical engine work.
    assert sharded.log == unsharded.log
    assert sharded.cardinality_hint() == unsharded.cardinality_hint()
    assert sharded.form_options("C0") == unsharded.form_options("C0")


@given(
    rows=rows_strategy,
    query=query_strategy,
    n_shards=st.integers(min_value=2, max_value=4),
    failing=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=75, deadline=None)
def test_partial_results_drop_exactly_the_failing_shard(
    rows, query, n_shards, failing, seed
):
    failing %= n_shards
    unsharded = AutonomousWebDatabase(_row_table(rows, auto_index=True))
    sharded = ShardedWebDatabase.partition(
        _row_table(rows, auto_index=True),
        n_shards,
        columnar=True,
        block_rows=BLOCK_ROWS,
        partial_results=True,
    )
    # A seeded always-on outage window: every probe against the failing
    # shard raises SourceUnavailableError, deterministically.
    sharded.set_shard_fault_policy(
        failing, FaultPolicy(FaultSpec(outages=((0, 10_000),)), seed=seed)
    )
    failures: list[ShardFailure] = []
    sharded.set_failure_listener(failures.append)
    expected = unsharded.query(query)
    degraded = sharded.query(query)
    lost = {
        row_id
        for row_id, row in enumerate(rows)
        if shard_of(row, n_shards) == failing
    }
    assert degraded.row_ids == tuple(
        row_id for row_id in expected.row_ids if row_id not in lost
    )
    assert set(degraded.row_ids).isdisjoint(lost)
    assert [f.shard for f in failures] == [failing]
    assert failures[0].stage == "query"
    # The degraded gather is still one logical probe.
    assert sharded.log.probes_issued == 1
    # Counts degrade the same way: the failing shard's matches vanish.
    expected_count = unsharded.count(query)
    lost_matches = sum(1 for row_id in expected.row_ids if row_id in lost)
    assert sharded.count(query) == expected_count - lost_matches


@given(
    rows=rows_strategy,
    n_shards=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=25, deadline=None)
def test_without_partial_results_a_shard_outage_propagates(rows, n_shards, seed):
    sharded = ShardedWebDatabase.partition(
        _row_table(rows, auto_index=True), n_shards, block_rows=BLOCK_ROWS
    )
    sharded.set_shard_fault_policy(
        0, FaultPolicy(FaultSpec(outages=((0, 10_000),)), seed=seed)
    )
    query = SelectionQuery((Eq("C0", "x"),))
    try:
        sharded.query(query)
    except Exception as error:  # noqa: BLE001 - asserting the exact type below
        from repro.db.errors import SourceUnavailableError

        assert isinstance(error, SourceUnavailableError)
    else:
        raise AssertionError("the outage should have propagated")
    # An aborted scatter records nothing: the probe never completed.
    assert sharded.log.probes_issued == 0
