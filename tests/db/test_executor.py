"""Unit tests for the boolean query executor and its planning."""

from repro.db.executor import Executor
from repro.db.predicates import Between, Eq, Ge, IsIn, Lt, Ne
from repro.db.query import SelectionQuery


class TestExecution:
    def test_equality_via_hash_index(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Eq("Make", "Toyota"),)))
        assert len(result) == 3
        assert executor.stats.index_lookups == 1
        assert executor.stats.full_scans == 0

    def test_conjunction_verifies_residual(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(
            SelectionQuery((Eq("Make", "Toyota"), Lt("Price", 9000)))
        )
        assert [row[1] for row in result] == ["Corolla"]

    def test_range_via_sorted_index(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(
            SelectionQuery((Between("Price", 7000, 8000),))
        )
        assert {row[1] for row in result} == {"Corolla", "Civic", "Focus"}
        assert executor.stats.index_lookups == 1

    def test_unindexable_predicate_full_scans(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Ne("Make", "Toyota"),)))
        assert len(result) == 5
        assert executor.stats.full_scans == 1

    def test_match_all_returns_everything(self, toy_table):
        executor = Executor(toy_table)
        assert len(executor.execute(SelectionQuery.match_all())) == len(toy_table)

    def test_planner_picks_smallest_candidate_set(self, toy_table):
        executor = Executor(toy_table)
        # Make=Ford has 2 candidates, Price>=0 has 8; driver must be Make.
        executor.execute(SelectionQuery((Ge("Price", 0), Eq("Make", "Ford"))))
        assert executor.stats.rows_examined == 2

    def test_isin_served_by_hash_index(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(
            SelectionQuery((IsIn("Make", ["Ford", "Honda"]),))
        )
        assert len(result) == 5

    def test_empty_result(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Eq("Make", "BMW"),)))
        assert len(result) == 0 and not result

    def test_result_rows_align_with_ids(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Eq("Make", "Honda"),)))
        for row_id, row in zip(result.row_ids, result.rows):
            assert toy_table.row(row_id) == row


class TestLimits:
    def test_limit_truncates(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Eq("Make", "Toyota"),)), limit=2)
        assert len(result) == 2
        assert result.truncated

    def test_limit_equal_to_result_not_truncated(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Eq("Make", "Ford"),)), limit=2)
        assert len(result) == 2
        assert not result.truncated

    def test_limit_on_full_scan(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery((Ne("Make", "Nothing"),)), limit=3)
        assert len(result) == 3
        assert result.truncated

    def test_offset_pages_through_results(self, toy_table):
        executor = Executor(toy_table)
        query = SelectionQuery((Eq("Make", "Toyota"),))
        first = executor.execute(query, limit=2, offset=0)
        second = executor.execute(query, limit=2, offset=2)
        assert len(first) == 2 and first.truncated
        assert len(second) == 1 and not second.truncated
        assert not set(first.row_ids) & set(second.row_ids)
        combined = sorted(first.row_ids + second.row_ids)
        assert combined == sorted(executor.execute(query).row_ids)

    def test_offset_beyond_matches_is_empty(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(
            SelectionQuery((Eq("Make", "Ford"),)), limit=5, offset=10
        )
        assert len(result) == 0 and not result.truncated

    def test_negative_offset_rejected(self, toy_table):
        import pytest

        executor = Executor(toy_table)
        with pytest.raises(ValueError):
            executor.execute(SelectionQuery.match_all(), offset=-1)

    def test_offset_without_limit(self, toy_table):
        executor = Executor(toy_table)
        result = executor.execute(SelectionQuery.match_all(), offset=5)
        assert len(result) == len(toy_table) - 5


class TestStats:
    def test_counters_accumulate(self, toy_table):
        executor = Executor(toy_table)
        executor.execute(SelectionQuery((Eq("Make", "Toyota"),)))
        executor.execute(SelectionQuery((Eq("Make", "Honda"),)))
        assert executor.stats.queries_executed == 2
        assert executor.stats.rows_returned == 6

    def test_count_helper(self, toy_table):
        executor = Executor(toy_table)
        assert executor.count(SelectionQuery((Eq("Make", "Ford"),))) == 2

    def test_stats_merge(self, toy_table):
        a = Executor(toy_table)
        b = Executor(toy_table)
        a.execute(SelectionQuery.match_all())
        b.execute(SelectionQuery.match_all())
        a.stats.merge(b.stats)
        assert a.stats.queries_executed == 2


class TestCountOnlyPath:
    """The count path must never materialise or account for rows."""

    def test_count_does_not_touch_rows_returned(self, toy_table):
        executor = Executor(toy_table)
        executor.count(SelectionQuery((Eq("Make", "Toyota"),)))
        assert executor.stats.queries_executed == 1
        assert executor.stats.rows_returned == 0
        assert executor.stats.rows_examined > 0

    def test_count_uses_index_when_available(self, toy_table):
        toy_table.create_hash_index("Make")
        executor = Executor(toy_table)
        assert executor.count(SelectionQuery((Eq("Make", "Honda"),))) == 3
        assert executor.stats.index_lookups == 1
        assert executor.stats.full_scans == 0
        # Only the candidate rows were examined, not the whole table.
        assert executor.stats.rows_examined == 3

    def test_count_agrees_with_execute(self, toy_table):
        executor = Executor(toy_table)
        for query in (
            SelectionQuery.match_all(),
            SelectionQuery((Eq("Make", "Toyota"),)),
            SelectionQuery((Eq("Make", "BMW"),)),
        ):
            expected = len(executor.execute(query))
            assert executor.count(query) == expected
