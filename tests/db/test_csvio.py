"""Unit tests for CSV round-trip."""

import pytest

from repro.db.csvio import read_csv, write_csv, write_rows_csv
from repro.db.errors import SchemaError
from repro.db.table import Table


class TestRoundTrip:
    def test_write_read_identity(self, toy_table, tmp_path):
        path = tmp_path / "cars.csv"
        written = write_csv(toy_table, path)
        assert written == len(toy_table)
        loaded = read_csv(toy_table.schema, path)
        assert loaded.rows() == toy_table.rows()

    def test_nulls_roundtrip(self, toy_schema, tmp_path):
        table = Table(toy_schema)
        table.insert(("Ford", None, None, 2001))
        path = tmp_path / "nulls.csv"
        write_csv(table, path)
        loaded = read_csv(toy_schema, path)
        assert loaded.row(0) == ("Ford", None, None, 2001)

    def test_floats_roundtrip(self, toy_schema, tmp_path):
        table = Table(toy_schema)
        table.insert(("Ford", "Focus", 7000.5, 2001))
        path = tmp_path / "floats.csv"
        write_csv(table, path)
        loaded = read_csv(toy_schema, path)
        assert loaded.row(0)[2] == pytest.approx(7000.5)

    def test_reordered_header_accepted(self, toy_schema, tmp_path):
        path = tmp_path / "reordered.csv"
        path.write_text("Model,Make,Year,Price\nFocus,Ford,2001,7000\n")
        loaded = read_csv(toy_schema, path)
        assert loaded.row(0) == ("Ford", "Focus", 7000, 2001)

    def test_write_rows_csv(self, toy_schema, tmp_path):
        path = tmp_path / "raw.csv"
        n = write_rows_csv(toy_schema, [("Ford", "Focus", 1, 2)], path)
        assert n == 1
        assert read_csv(toy_schema, path).row(0) == ("Ford", "Focus", 1, 2)


class TestErrors:
    def test_empty_file(self, toy_schema, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(toy_schema, path)

    def test_wrong_header(self, toy_schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,B\n1,2\n")
        with pytest.raises(SchemaError):
            read_csv(toy_schema, path)

    def test_ragged_row(self, toy_schema, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("Make,Model,Price,Year\nFord,Focus,7000\n")
        with pytest.raises(SchemaError):
            read_csv(toy_schema, path)

    def test_unparseable_number(self, toy_schema, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("Make,Model,Price,Year\nFord,Focus,cheap,2001\n")
        with pytest.raises(SchemaError):
            read_csv(toy_schema, path)
