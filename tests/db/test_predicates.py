"""Unit tests for the boolean predicate atoms."""

import pytest

from repro.db.errors import QueryError
from repro.db.predicates import (
    Between,
    Eq,
    Ge,
    Gt,
    IsIn,
    Le,
    Lt,
    Ne,
    parse_op,
)


class TestEq:
    def test_matches(self):
        p = Eq("A", "x")
        assert p.matches("x")
        assert not p.matches("y")
        assert not p.matches(None)

    def test_flags(self):
        p = Eq("A", "x")
        assert p.is_equality and not p.is_range

    def test_describe(self):
        assert Eq("A", "x").describe() == "A = 'x'"


class TestNe:
    def test_matches(self):
        p = Ne("A", "x")
        assert p.matches("y")
        assert not p.matches("x")

    def test_null_never_matches(self):
        assert not Ne("A", "x").matches(None)


class TestComparisons:
    @pytest.mark.parametrize(
        "predicate,hit,miss",
        [
            (Lt("N", 5), 4, 5),
            (Le("N", 5), 5, 6),
            (Gt("N", 5), 6, 5),
            (Ge("N", 5), 5, 4),
        ],
    )
    def test_boundaries(self, predicate, hit, miss):
        assert predicate.matches(hit)
        assert not predicate.matches(miss)

    @pytest.mark.parametrize(
        "predicate", [Lt("N", 5), Le("N", 5), Gt("N", 5), Ge("N", 5)]
    )
    def test_null_never_matches(self, predicate):
        assert not predicate.matches(None)

    @pytest.mark.parametrize(
        "predicate", [Lt("N", 5), Le("N", 5), Gt("N", 5), Ge("N", 5)]
    )
    def test_is_range(self, predicate):
        assert predicate.is_range


class TestBetween:
    def test_inclusive_both_ends(self):
        p = Between("N", 2, 5)
        assert p.matches(2) and p.matches(5) and p.matches(3)
        assert not p.matches(1) and not p.matches(6)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(QueryError):
            Between("N", 5, 2)

    def test_incomparable_bounds_rejected(self):
        with pytest.raises(QueryError):
            Between("N", "a", 3)

    def test_degenerate_range_is_equality_like(self):
        p = Between("N", 3, 3)
        assert p.matches(3) and not p.matches(4)


class TestIsIn:
    def test_matches_any_member(self):
        p = IsIn("A", ["x", "y"])
        assert p.matches("x") and p.matches("y")
        assert not p.matches("z")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            IsIn("A", [])

    def test_values_deduplicated(self):
        assert len(IsIn("A", ["x", "x", "y"]).values) == 2

    def test_describe_deterministic(self):
        assert IsIn("A", ["b", "a"]).describe() == "A in ('a', 'b')"


class TestParseOp:
    @pytest.mark.parametrize(
        "op,cls",
        [("=", Eq), ("==", Eq), ("!=", Ne), ("<", Lt), ("<=", Le), (">", Gt), (">=", Ge)],
    )
    def test_known_operators(self, op, cls):
        assert isinstance(parse_op("A", op, 1), cls)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            parse_op("A", "~", 1)
