"""Unit tests for relation schemas and attribute typing."""

import pytest

from repro.db.errors import SchemaError, TypeMismatchError, UnknownAttributeError
from repro.db.schema import Attribute, AttributeKind, RelationSchema


def make_schema() -> RelationSchema:
    return RelationSchema.build(
        "R", categorical=("A", "B"), numeric=("N",), order=("A", "N", "B")
    )


class TestAttribute:
    def test_kinds(self):
        a = Attribute("A", AttributeKind.CATEGORICAL)
        n = Attribute("N", AttributeKind.NUMERIC)
        assert a.is_categorical and not a.is_numeric
        assert n.is_numeric and not n.is_categorical

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeKind.CATEGORICAL)

    def test_validate_none_allowed_for_both_kinds(self):
        Attribute("A", AttributeKind.CATEGORICAL).validate_value(None)
        Attribute("N", AttributeKind.NUMERIC).validate_value(None)

    def test_numeric_accepts_int_and_float(self):
        n = Attribute("N", AttributeKind.NUMERIC)
        n.validate_value(3)
        n.validate_value(3.5)

    def test_numeric_rejects_strings_and_bools(self):
        n = Attribute("N", AttributeKind.NUMERIC)
        with pytest.raises(TypeMismatchError):
            n.validate_value("3")
        with pytest.raises(TypeMismatchError):
            n.validate_value(True)

    def test_categorical_rejects_numbers(self):
        a = Attribute("A", AttributeKind.CATEGORICAL)
        with pytest.raises(TypeMismatchError):
            a.validate_value(3)


class TestRelationSchema:
    def test_positions_follow_order(self):
        schema = make_schema()
        assert schema.position("A") == 0
        assert schema.position("N") == 1
        assert schema.position("B") == 2
        assert schema.positions(("B", "A")) == (2, 0)

    def test_attribute_names(self):
        assert make_schema().attribute_names == ("A", "N", "B")

    def test_kind_partition(self):
        schema = make_schema()
        assert schema.categorical_names == ("A", "B")
        assert schema.numeric_names == ("N",)

    def test_contains_and_iter(self):
        schema = make_schema()
        assert "A" in schema and "Z" not in schema
        assert [a.name for a in schema] == ["A", "N", "B"]
        assert len(schema) == 3

    def test_unknown_attribute_raises(self):
        schema = make_schema()
        with pytest.raises(UnknownAttributeError):
            schema.position("Z")
        with pytest.raises(UnknownAttributeError):
            schema.attribute("Z")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "R",
                (
                    Attribute("A", AttributeKind.CATEGORICAL),
                    Attribute("A", AttributeKind.NUMERIC),
                ),
            )

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())
        with pytest.raises(SchemaError):
            RelationSchema("", (Attribute("A", AttributeKind.CATEGORICAL),))

    def test_build_rejects_double_listing(self):
        with pytest.raises(SchemaError):
            RelationSchema.build("R", categorical=("A",), numeric=("A",))

    def test_build_rejects_bad_order(self):
        with pytest.raises(SchemaError):
            RelationSchema.build(
                "R", categorical=("A",), numeric=("N",), order=("A",)
            )

    def test_validate_row_arity(self):
        schema = make_schema()
        with pytest.raises(TypeMismatchError):
            schema.validate_row(("x", 1))

    def test_validate_row_types(self):
        schema = make_schema()
        assert schema.validate_row(("x", 1, "y")) == ("x", 1, "y")
        with pytest.raises(TypeMismatchError):
            schema.validate_row(("x", "not-a-number", "y"))

    def test_row_mapping_roundtrip(self):
        schema = make_schema()
        row = schema.row_from_mapping({"A": "x", "N": 2, "B": "y"})
        assert row == ("x", 2, "y")
        assert schema.row_to_mapping(row) == {"A": "x", "N": 2, "B": "y"}

    def test_row_from_mapping_missing_fills_none(self):
        schema = make_schema()
        assert schema.row_from_mapping({"A": "x"}) == ("x", None, None)

    def test_row_from_mapping_extra_key_raises(self):
        schema = make_schema()
        with pytest.raises(UnknownAttributeError):
            schema.row_from_mapping({"A": "x", "Z": 1})

    def test_project(self):
        schema = make_schema()
        projected = schema.project(("B", "N"))
        assert projected.attribute_names == ("B", "N")
        assert projected.attribute("N").is_numeric
