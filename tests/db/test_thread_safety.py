"""Stress tests: the state REP007 guards stays consistent under threads.

Eight threads hammer exactly the mutators the concurrency lint pass
forced under the accounting lock (``set_fault_policy``,
``enable_probe_cache``/``disable_probe_cache``, ``attach_guards``,
``set_failure_listener``) while other threads drive the locked
query/count path.  The assertions are the invariants the lock
protects: probe accounting matches the number of successful probes,
and no probe ever observes a torn configuration.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.db.predicates import Eq
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.sharded import ShardedWebDatabase
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase

THREADS = 8
ROUNDS = 50

SCHEMA = RelationSchema.build(
    "cars",
    categorical=("Make",),
    numeric=("Price",),
    order=("Make", "Price"),
)

ROWS = [
    ("honda", 10),
    ("toyota", 20),
    ("honda", 30),
    ("ford", 40),
    ("toyota", 50),
    ("honda", 60),
    ("ford", 70),
    ("toyota", 80),
]


def build_table() -> Table:
    table = Table(SCHEMA)
    for row in ROWS:
        table.insert(row)
    return table


def hammer(workers: list) -> None:
    """Run every worker ROUNDS times across THREADS threads."""
    barrier = threading.Barrier(THREADS)

    def loop(worker) -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            worker()

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [
            pool.submit(loop, workers[index % len(workers)])
            for index in range(THREADS)
        ]
        for future in futures:
            future.result()


def test_webdb_accounting_survives_concurrent_reconfiguration():
    webdb = AutonomousWebDatabase(build_table())
    query = SelectionQuery((Eq("Make", "honda"),))
    probes = []
    probe_lock = threading.Lock()

    def probe() -> None:
        result = webdb.query(query)
        assert len(result) == 3
        with probe_lock:
            probes.append(1)

    def count() -> None:
        assert webdb.count(query) == 3
        with probe_lock:
            probes.append(1)

    def flip_cache() -> None:
        webdb.enable_probe_cache(capacity=8)
        webdb.disable_probe_cache()

    def flip_faults() -> None:
        webdb.set_fault_policy(None)

    hammer([probe, count, flip_cache, flip_faults])
    # A call lands either as an issued probe or (when it raced a
    # transiently-enabled cache) as a cache hit — never lost, never
    # double-counted.
    assert webdb.log.probes_issued + webdb.log.cache_hits == len(probes)


def test_sharded_accounting_survives_concurrent_reconfiguration():
    sharded = ShardedWebDatabase.partition(build_table(), 2)
    query = SelectionQuery((Eq("Make", "toyota"),))
    probes = []
    probe_lock = threading.Lock()

    def probe() -> None:
        result = sharded.query(query)
        assert len(result) == 3
        with probe_lock:
            probes.append(1)

    def count() -> None:
        assert sharded.count(query) == 3
        with probe_lock:
            probes.append(1)

    def flip_cache() -> None:
        sharded.enable_probe_cache(capacity=8)
        sharded.disable_probe_cache()

    def flip_listener() -> None:
        sharded.set_failure_listener(None)

    hammer([probe, count, flip_cache, flip_listener])
    # The facade logs one logical probe (or cache hit) per call.
    assert sharded.log.probes_issued + sharded.log.cache_hits == len(probes)
