"""Unit tests for the sharded scatter-gather facade (mechanics)."""

from __future__ import annotations

import pytest

from repro.db import (
    DatabaseError,
    ProbeLimitExceededError,
    QueryError,
)
from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.predicates import Eq, Ge
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.sharded import ShardedWebDatabase, ShardFailure, shard_of
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase

SCHEMA = RelationSchema.build(
    "cars",
    categorical=("Make",),
    numeric=("Price",),
    order=("Make", "Price"),
)

ROWS = [
    ("honda", 10),
    ("toyota", 20),
    ("honda", 30),
    ("ford", 40),
    ("toyota", 50),
    ("honda", 60),
    ("ford", 70),
    ("toyota", 80),
    ("honda", 90),
    ("ford", 100),
]


def build_table(rows=ROWS) -> Table:
    table = Table(SCHEMA)
    for row in rows:
        table.insert(row)
    return table


def build_sharded(n_shards=3, **kwargs) -> ShardedWebDatabase:
    return ShardedWebDatabase.partition(build_table(), n_shards, **kwargs)


ALL = SelectionQuery(())
HONDAS = SelectionQuery((Eq("Make", "honda"),))


class RefusingGuard:
    """A guard that always refuses admission with ``error``."""

    def __init__(self, error: BaseException) -> None:
        self.error = error
        self.successes = 0
        self.failures: list[BaseException] = []

    def before_call(self) -> None:
        raise self.error

    def record_success(self) -> None:
        self.successes += 1

    def record_failure(self, error: BaseException) -> None:
        self.failures.append(error)


class OpenGuard:
    """A guard that admits everything and tallies outcomes."""

    def __init__(self) -> None:
        self.calls = 0
        self.successes = 0
        self.failures: list[BaseException] = []

    def before_call(self) -> None:
        self.calls += 1

    def record_success(self) -> None:
        self.successes += 1

    def record_failure(self, error: BaseException) -> None:
        self.failures.append(error)


# -- partitioning --------------------------------------------------------------


def test_partition_covers_every_row_exactly_once():
    sharded = build_sharded(n_shards=3)
    result = sharded.query(ALL)
    assert list(result.row_ids) == list(range(len(ROWS)))
    assert result.rows == tuple(ROWS)


def test_shard_of_is_deterministic_and_in_range():
    for n in (1, 2, 3, 7):
        for row in ROWS:
            home = shard_of(row, n)
            assert 0 <= home < n
            assert home == shard_of(row, n)


def test_partition_rejects_bad_shard_counts():
    with pytest.raises(ValueError, match="at least 1"):
        ShardedWebDatabase.partition(build_table(), 0)


def test_constructor_rejects_capped_or_budgeted_shards():
    shard = AutonomousWebDatabase(build_table(), result_cap=5)
    with pytest.raises(ValueError, match="uncapped"):
        ShardedWebDatabase([shard], [list(range(len(ROWS)))])


def test_constructor_rejects_mismatched_id_tables():
    shard = AutonomousWebDatabase(build_table())
    with pytest.raises(ValueError, match="one global-id table per shard"):
        ShardedWebDatabase([shard], [])


def test_constructor_rejects_zero_shards():
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedWebDatabase([], [])


# -- gather / paging -----------------------------------------------------------


def test_gather_merges_in_global_row_id_order():
    sharded = build_sharded(n_shards=4)
    result = sharded.query(HONDAS)
    assert list(result.row_ids) == [0, 2, 5, 8]
    assert all(row[0] == "honda" for row in result.rows)


def test_paging_window_matches_unsharded_facade():
    unsharded = AutonomousWebDatabase(build_table())
    sharded = build_sharded(n_shards=3)
    for limit, offset in [(None, 0), (2, 0), (2, 1), (3, 2), (None, 3), (1, 9)]:
        expected = unsharded.query(HONDAS, limit=limit, offset=offset)
        got = sharded.query(HONDAS, limit=limit, offset=offset)
        assert got.row_ids == expected.row_ids
        assert got.rows == expected.rows
        assert got.truncated == expected.truncated


def test_result_cap_truncates_like_the_unsharded_facade():
    unsharded = AutonomousWebDatabase(build_table(), result_cap=3)
    sharded = build_sharded(n_shards=3, result_cap=3)
    expected = unsharded.query(ALL)
    got = sharded.query(ALL)
    assert got.row_ids == expected.row_ids
    assert got.truncated and expected.truncated


def test_negative_offset_is_rejected():
    with pytest.raises(ValueError, match="offset"):
        build_sharded().query(ALL, offset=-1)


def test_count_is_the_shard_sum():
    sharded = build_sharded(n_shards=3)
    assert sharded.count(HONDAS) == 4
    assert sharded.count(SelectionQuery((Ge("Price", 60),))) == 5


# -- accounting roll-up --------------------------------------------------------


def test_facade_log_counts_logical_probes_and_shards_count_fanout():
    sharded = build_sharded(n_shards=3)
    sharded.query(HONDAS)
    sharded.count(HONDAS)
    assert sharded.log.probes_issued == 2
    assert sharded.log.count_probes == 1
    assert sharded.log.tuples_returned == 4
    for shard_log in sharded.shard_probe_logs():
        # Physical fan-out: every healthy scatter touches every shard.
        assert shard_log.probes_issued == 2
        assert shard_log.count_probes == 1


def test_execution_stats_roll_up_physical_engine_work():
    sharded = build_sharded(n_shards=3)
    sharded.query(HONDAS)
    # One logical probe ran one engine query per shard.
    assert sharded.execution_stats.queries_executed == 3
    assert sharded.execution_stats.rows_returned == 4


def test_reset_accounting_clears_facade_and_shards():
    sharded = build_sharded(n_shards=2)
    sharded.query(ALL)
    sharded.reset_accounting()
    assert sharded.log.probes_issued == 0
    assert all(log.probes_issued == 0 for log in sharded.shard_probe_logs())
    assert sharded.execution_stats.queries_executed == 0


def test_accounting_scope_windows_the_rolled_up_stats():
    sharded = build_sharded(n_shards=2)
    sharded.query(ALL)
    with sharded.accounting_scope() as window:
        sharded.query(HONDAS)
        assert window.probes_issued == 1
        assert window.execution_stats.queries_executed == 2


def test_metadata_matches_unsharded_facade():
    unsharded = AutonomousWebDatabase(build_table())
    sharded = build_sharded(n_shards=3)
    assert sharded.schema is not None
    assert sharded.name == unsharded.name
    assert sharded.cardinality_hint() == unsharded.cardinality_hint()
    assert sharded.form_options("Make") == unsharded.form_options("Make")
    assert sharded.n_shards == 3


# -- budget and cache ----------------------------------------------------------


def test_probe_budget_is_enforced_at_the_facade():
    sharded = build_sharded(n_shards=2, probe_budget=2)
    sharded.query(ALL)
    sharded.count(ALL)
    with pytest.raises(ProbeLimitExceededError):
        sharded.query(ALL)
    assert sharded.log.probes_issued == 2


def test_probe_cache_serves_repeats_without_new_probes():
    sharded = build_sharded(n_shards=2, probe_cache_capacity=8)
    first = sharded.query(HONDAS)
    before = sharded.shard_probe_logs()
    second = sharded.query(HONDAS)
    assert second.from_cache and not first.from_cache
    assert second.rows == first.rows
    assert sharded.log.probes_issued == 1
    assert sharded.log.cache_hits == 1
    # A cache hit never reaches any shard.
    assert sharded.shard_probe_logs() == before


def test_degraded_gathers_are_never_cached():
    sharded = build_sharded(
        n_shards=2, probe_cache_capacity=8, partial_results=True
    )
    sharded.set_shard_fault_policy(
        0, FaultPolicy(FaultSpec(outages=((0, 1),)), seed=7)
    )
    sharded.set_failure_listener(lambda failure: None)
    degraded = sharded.query(HONDAS)
    healthy = sharded.query(HONDAS)
    assert not healthy.from_cache  # the degraded page was not cached
    assert len(healthy.rows) >= len(degraded.rows)
    third = sharded.query(HONDAS)
    assert third.from_cache  # the healthy page was


# -- guards and failure reporting ----------------------------------------------


def test_guard_refusal_drops_the_shard_in_partial_mode():
    sharded = build_sharded(n_shards=2, partial_results=True)
    refusal = RuntimeError("circuit open")
    guards = [RefusingGuard(refusal), OpenGuard()]
    sharded.attach_guards(guards)
    failures: list[ShardFailure] = []
    sharded.set_failure_listener(failures.append)
    result = sharded.query(ALL)
    lost = {i for i, row in enumerate(ROWS) if shard_of(row, 2) == 0}
    assert set(result.row_ids) == set(range(len(ROWS))) - lost
    assert [f.shard for f in failures] == [0]
    assert failures[0].error is refusal
    assert guards[1].successes == 1


def test_guard_refusal_propagates_without_partial_results():
    sharded = build_sharded(n_shards=2)
    sharded.attach_guards([RefusingGuard(RuntimeError("open")), OpenGuard()])
    with pytest.raises(RuntimeError, match="open"):
        sharded.query(ALL)
    assert sharded.log.probes_issued == 0


def test_database_errors_from_guards_are_caller_bugs_and_propagate():
    sharded = build_sharded(n_shards=2, partial_results=True)
    sharded.attach_guards([RefusingGuard(QueryError("bad guard")), OpenGuard()])
    with pytest.raises(DatabaseError):
        sharded.query(ALL)


def test_guards_see_failures_then_successes():
    sharded = build_sharded(n_shards=2, partial_results=True)
    guards = [OpenGuard(), OpenGuard()]
    sharded.attach_guards(guards)
    sharded.set_failure_listener(lambda failure: None)
    sharded.set_shard_fault_policy(
        0, FaultPolicy(FaultSpec(outages=((0, 1),)), seed=0)
    )
    sharded.query(ALL)  # shard 0 down
    sharded.query(ALL)  # shard 0 recovered
    assert len(guards[0].failures) == 1
    assert guards[0].successes == 1
    assert guards[1].successes == 2


def test_attach_guards_requires_one_per_shard():
    sharded = build_sharded(n_shards=3)
    with pytest.raises(ValueError, match="one guard per shard"):
        sharded.attach_guards([OpenGuard()])


def test_count_degrades_by_dropping_the_failed_shard():
    sharded = build_sharded(n_shards=2, partial_results=True)
    sharded.set_shard_fault_policy(
        0, FaultPolicy(FaultSpec(outages=((0, 1),)), seed=0)
    )
    failures: list[ShardFailure] = []
    sharded.set_failure_listener(failures.append)
    degraded = sharded.count(ALL)
    healthy = sharded.count(ALL)
    lost = sum(1 for row in ROWS if shard_of(row, 2) == 0)
    assert degraded == len(ROWS) - lost
    assert healthy == len(ROWS)
    assert failures[0].stage == "count"
