"""Unit tests for the car catalogue."""

from repro.datasets.catalog import (
    CATALOG,
    MAKES,
    MODELS_BY_MAKE,
    ground_truth_model_affinity,
    model_spec,
)


class TestCatalogStructure:
    def test_models_unique(self):
        models = [spec.model for spec in CATALOG]
        assert len(models) == len(set(models))

    def test_every_make_has_models(self):
        for make in MAKES:
            assert MODELS_BY_MAKE[make]

    def test_paper_values_present(self):
        """Values the paper's tables/figures mention must exist."""
        models = {spec.model for spec in CATALOG}
        for required in ("Camry", "Accord", "Bronco", "Aerostar", "F-350",
                         "Econoline Van", "Focus", "ZX2", "F-150"):
            assert required in models, required
        for make in ("Ford", "Chevrolet", "Toyota", "Honda", "Dodge",
                     "Nissan", "BMW", "Kia", "Hyundai", "Isuzu", "Subaru"):
            assert make in MAKES, make

    def test_model_spec_lookup(self):
        spec = model_spec("Camry")
        assert spec.make == "Toyota"
        assert spec.segment == "midsize"

    def test_tiers_cover_catalog(self):
        assert {spec.tier for spec in CATALOG} == {"budget", "mid", "premium"}

    def test_bmw_is_premium(self):
        for spec in MODELS_BY_MAKE["BMW"]:
            assert spec.tier == "premium"

    def test_positive_prices_and_popularity(self):
        for spec in CATALOG:
            assert spec.base_price > 0
            assert spec.popularity > 0


class TestGroundTruthAffinity:
    def test_identity(self):
        assert ground_truth_model_affinity("Camry", "Camry") == 1.0

    def test_same_segment_same_tier(self):
        # Camry and Accord: midsize, budget tier (both < 22000).
        assert ground_truth_model_affinity("Camry", "Accord") == 0.8

    def test_unrelated_models_low(self):
        assert ground_truth_model_affinity("Camry", "540i") <= 0.35

    def test_symmetry(self):
        pairs = [("Camry", "F-150"), ("Civic", "Rio"), ("325i", "M3")]
        for a, b in pairs:
            assert ground_truth_model_affinity(a, b) == ground_truth_model_affinity(
                b, a
            )

    def test_unknown_model_scores_zero(self):
        assert ground_truth_model_affinity("Camry", "Batmobile") == 0.0
