"""Unit tests for the synthetic CarDB generator."""

import pytest

from repro.datasets.cardb import CARDB_SCHEMA, YEAR_RANGE, cardb_webdb, generate_cardb
from repro.datasets.catalog import model_spec


class TestSchema:
    def test_paper_schema(self):
        assert CARDB_SCHEMA.name == "CarDB"
        assert CARDB_SCHEMA.attribute_names == (
            "Make", "Model", "Year", "Price", "Mileage", "Location", "Color",
        )
        # Paper §6.1 typing: Year is categorical, Price/Mileage numeric.
        assert CARDB_SCHEMA.attribute("Year").is_categorical
        assert CARDB_SCHEMA.attribute("Price").is_numeric
        assert CARDB_SCHEMA.attribute("Mileage").is_numeric


class TestGenerator:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_cardb(2000, seed=3)

    def test_row_count(self, table):
        assert len(table) == 2000

    def test_deterministic(self):
        a = generate_cardb(100, seed=5)
        b = generate_cardb(100, seed=5)
        assert a.rows() == b.rows()

    def test_different_seeds_differ(self):
        a = generate_cardb(100, seed=5)
        b = generate_cardb(100, seed=6)
        assert a.rows() != b.rows()

    def test_model_determines_make(self, table):
        for row in table:
            make, model = row[0], row[1]
            assert model_spec(model).make == make

    def test_years_in_range(self, table):
        years = {int(y) for y in table.distinct_values("Year")}
        assert min(years) >= YEAR_RANGE[0]
        assert max(years) <= YEAR_RANGE[1]

    def test_prices_quoted_to_hundreds(self, table):
        assert all(row[3] % 100 == 0 for row in table)
        assert all(row[3] >= 500 for row in table)

    def test_mileage_quoted_to_five_hundreds(self, table):
        assert all(row[4] % 500 == 0 for row in table)
        assert all(row[4] >= 0 for row in table)

    def test_price_falls_with_age(self, table):
        """Depreciation: average Camry price must decrease with age."""
        position_year = CARDB_SCHEMA.position("Year")
        position_price = CARDB_SCHEMA.position("Price")
        old = [
            row[position_price]
            for row in table
            if row[1] == "Camry" and int(row[position_year]) <= 1995
        ]
        new = [
            row[position_price]
            for row in table
            if row[1] == "Camry" and int(row[position_year]) >= 2003
        ]
        if old and new:
            assert sum(new) / len(new) > sum(old) / len(old)

    def test_mileage_grows_with_age(self, table):
        position_year = CARDB_SCHEMA.position("Year")
        old = [row[4] for row in table if int(row[position_year]) <= 1995]
        new = [row[4] for row in table if int(row[position_year]) >= 2003]
        assert sum(old) / len(old) > sum(new) / len(new)

    def test_zero_rows(self):
        assert len(generate_cardb(0)) == 0

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            generate_cardb(-1)


class TestWebDBWrapper:
    def test_wraps_as_autonomous_source(self):
        webdb = cardb_webdb(200, seed=4)
        assert webdb.cardinality_hint() == 200
        assert "Camry" in webdb.form_options("Model") or webdb.form_options("Model")

    def test_result_cap_passthrough(self):
        webdb = cardb_webdb(200, seed=4, result_cap=3)
        from repro.db.query import SelectionQuery

        result = webdb.query(SelectionQuery.match_all())
        assert len(result) == 3
