"""Unit tests for the synthetic CensusDB generator."""

import pytest

from repro.datasets.census import (
    CENSUS_SCHEMA,
    INCOME_HIGH,
    INCOME_LOW,
    census_webdb,
    generate_censusdb,
)


class TestSchema:
    def test_paper_schema(self):
        assert CENSUS_SCHEMA.name == "CensusDB"
        assert len(CENSUS_SCHEMA) == 13
        # §6.1 typing: 5 numeric, 8 categorical.
        assert set(CENSUS_SCHEMA.numeric_names) == {
            "Age",
            "Demographic-weight",
            "Capital-gain",
            "Capital-loss",
            "Hours-per-week",
        }
        assert len(CENSUS_SCHEMA.categorical_names) == 8


class TestGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_censusdb(3000, seed=2)

    def test_row_count_and_labels_align(self, data):
        table, labels = data
        assert len(table) == len(labels) == 3000

    def test_labels_are_the_two_classes(self, data):
        _, labels = data
        assert set(labels) == {INCOME_HIGH, INCOME_LOW}

    def test_class_skew_roughly_adult_like(self, data):
        _, labels = data
        high_fraction = labels.count(INCOME_HIGH) / len(labels)
        assert 0.15 <= high_fraction <= 0.40

    def test_deterministic(self):
        a_table, a_labels = generate_censusdb(200, seed=5)
        b_table, b_labels = generate_censusdb(200, seed=5)
        assert a_table.rows() == b_table.rows()
        assert a_labels == b_labels

    def test_age_bounds(self, data):
        table, _ = data
        ages = table.column("Age")
        assert min(ages) >= 17 and max(ages) <= 90

    def test_hours_bounds(self, data):
        table, _ = data
        hours = table.column("Hours-per-week")
        assert min(hours) >= 5 and max(hours) <= 99

    def test_married_relationship_consistency(self, data):
        table, _ = data
        position_marital = CENSUS_SCHEMA.position("Marital-Status")
        position_rel = CENSUS_SCHEMA.position("Relationship")
        position_sex = CENSUS_SCHEMA.position("Sex")
        for row in table:
            if row[position_marital] == "Married-civ-spouse":
                expected = "Husband" if row[position_sex] == "Male" else "Wife"
                assert row[position_rel] == expected
            else:
                assert row[position_rel] not in ("Husband", "Wife")

    def test_education_correlates_with_income(self, data):
        table, labels = data
        position = CENSUS_SCHEMA.position("Education")
        high_ed = {"Masters", "Prof-school", "Doctorate"}
        rates = {}
        for bucket in (True, False):
            rows = [
                label
                for row, label in zip(table, labels)
                if (row[position] in high_ed) == bucket
            ]
            rates[bucket] = rows.count(INCOME_HIGH) / max(1, len(rows))
        assert rates[True] > rates[False]

    def test_married_correlates_with_income(self, data):
        table, labels = data
        position = CENSUS_SCHEMA.position("Marital-Status")
        married = [
            label
            for row, label in zip(table, labels)
            if row[position] == "Married-civ-spouse"
        ]
        unmarried = [
            label
            for row, label in zip(table, labels)
            if row[position] != "Married-civ-spouse"
        ]
        assert married.count(INCOME_HIGH) / len(married) > unmarried.count(
            INCOME_HIGH
        ) / len(unmarried)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            generate_censusdb(-5)


class TestWebDBWrapper:
    def test_wraps_with_labels(self):
        webdb, labels = census_webdb(100, seed=3)
        assert webdb.cardinality_hint() == 100
        assert len(labels) == 100
